"""Delta postings over any inverted index: token-level write maintenance.

A :class:`LiveInvertedIndex` wraps either build-path or snapshot-path
index (:class:`~repro.search.inverted_index.InvertedIndex` /
:class:`~repro.search.inverted_index.ArrayInvertedIndex` — anything with
``lookup``) and merges per-token ``added`` / ``removed`` posting sets at
read time.  A mutation's token delta is the set difference between the
old and new row's searchable-column token sets, so an update that keeps
a token (moves it between columns, say) generates no overlay entry at
all.  :meth:`rebuilt` drops the overlays by scanning a fresh base index —
the compaction path, invoked by the live state, not per write.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.db.schema import TableSchema
from repro.search.inverted_index import BaseInvertedIndex, Posting
from repro.search.tokenizer import tokenize


def row_tokens(schema: TableSchema, row: "tuple[Any, ...] | None") -> set[str]:
    """The token set of one row's searchable columns (empty for ``None``)."""
    if row is None:
        return set()
    tokens: set[str] = set()
    for column in schema.searchable_columns():
        value = row[schema.column_index(column.name)]
        if not value:
            continue
        tokens.update(tokenize(str(value)))
    return tokens


class LiveInvertedIndex(BaseInvertedIndex):
    """An inverted index plus its in-memory write overlay."""

    def __init__(self, base: BaseInvertedIndex, tables: Iterable[str]) -> None:
        self.base = base
        self.tables = list(tables)
        self._added: dict[str, set[Posting]] = {}
        self._removed: dict[str, set[Posting]] = {}

    @property
    def vocabulary_size(self) -> int:
        base = getattr(self.base, "vocabulary_size", 0)
        return int(base) + sum(1 for t in self._added if not self.base.lookup(t))

    @property
    def dirty(self) -> bool:
        return bool(self._added or self._removed)

    @property
    def overlay_size(self) -> int:
        """Total overlay postings (added + removed) across all tokens."""
        return sum(len(v) for v in self._added.values()) + sum(
            len(v) for v in self._removed.values()
        )

    def lookup(self, token: str) -> set[Posting]:
        token = token.lower()
        postings = self.base.lookup(token)
        removed = self._removed.get(token)
        if removed:
            postings -= removed
        added = self._added.get(token)
        if added:
            postings |= added
        return postings

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def apply_row(
        self,
        table: str,
        row_id: int,
        schema: TableSchema,
        old_row: "tuple[Any, ...] | None",
        new_row: "tuple[Any, ...] | None",
    ) -> set[str]:
        """Patch postings for one row transition; returns the touched tokens."""
        old_tokens = row_tokens(schema, old_row)
        new_tokens = row_tokens(schema, new_row)
        posting = Posting(table, row_id)
        for token in old_tokens - new_tokens:
            added = self._added.get(token)
            if added and posting in added:
                added.discard(posting)
                if not added:
                    del self._added[token]
            else:
                self._removed.setdefault(token, set()).add(posting)
        for token in new_tokens - old_tokens:
            removed = self._removed.get(token)
            if removed and posting in removed:
                removed.discard(posting)
                if not removed:
                    del self._removed[token]
            else:
                self._added.setdefault(token, set()).add(posting)
        return old_tokens ^ new_tokens

    def rebuilt(self, base: BaseInvertedIndex) -> "LiveInvertedIndex":
        """A fresh overlay over a recompacted base index."""
        return LiveInvertedIndex(base, self.tables)

    def to_arrays(self) -> Any:
        """Delegate snapshot encoding to the base — only when clean.

        Snapshots must capture a compacted generation; encoding while
        overlay entries exist would silently drop them."""
        if self.dirty:
            from repro.errors import PersistError

            raise PersistError(
                "cannot snapshot a live inverted index with pending write "
                "overlays; compact the live state first"
            )
        to_arrays = getattr(self.base, "to_arrays", None)
        if to_arrays is None:
            from repro.errors import PersistError

            raise PersistError(
                f"base index {type(self.base).__name__} does not support "
                "array encoding"
            )
        return to_arrays()
