"""Reader-writer coordination between queries and mutation commits.

Queries (OS generation, keyword search) read the delta-overlaid derived
structures at many points; a mutation commit patches all of them.  The
:class:`ReadWriteLock` gives each side what it needs: any number of
concurrent readers, one writer at a time, and — critically — *atomic
visibility*: a reader entering before a commit sees the pre-mutation
state throughout, a reader entering after sees the post-mutation state,
and no reader ever observes a half-applied commit.  That is exactly the
"pre or post, never torn" guarantee the live hammer suite pins.

Both sides are re-entrant per thread (generation nests read sections;
the writer re-enters reads while re-evaluating watches), so the lock
tracks a per-thread read depth and lets the writing thread read freely.

:class:`FrozenReadGuard` is the near-zero-cost stand-in installed while
a dataset has no live state: engines always guard their read sections,
but before any write is possible the guard only counts readers in and
out.  The count is what makes *activation* safe — the first-ever
mutation upgrades the guard to the real lock and then drains the
readers that entered under the frozen one, closing the window where a
query in flight across the upgrade could race the first commit.

:data:`NULL_GUARD` remains the truly free no-op guard for contexts that
can never upgrade (ad-hoc engines in tests and benchmarks).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


class _NullGuard:
    """No-op guard for frozen (never-mutated) datasets."""

    @contextmanager
    def read(self) -> Iterator[None]:
        yield

    @contextmanager
    def write(self) -> Iterator[None]:
        yield


NULL_GUARD = _NullGuard()


class FrozenReadGuard:
    """Counting read guard for a not-yet-mutable engine.

    Reads never block — they increment a counter on entry and decrement
    on exit.  :meth:`upgrade` is called exactly once, by live-state
    activation, *before* the first write: it redirects all future (and
    in-progress re-entrant) readers to the real lock and then waits for
    the counted pre-upgrade readers to drain.  Only after that drain can
    the first commit take the write lock, so no reader ever straddles
    the frozen/live boundary unguarded.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._count = 0
        self._upgraded: "ReadWriteLock | None" = None
        self._local = threading.local()

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            upgraded = self._upgraded
            if upgraded is None:
                self._count += 1
                self._local.depth = self._depth() + 1
        if upgraded is not None:
            # the engine froze over: this section runs under the real lock
            with upgraded.read():
                yield
            return
        try:
            yield
        finally:
            with self._cond:
                self._count -= 1
                self._local.depth -= 1
                if self._count == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Writes only exist after an upgrade; delegate when one happened."""
        upgraded = self._upgraded
        if upgraded is None:
            raise RuntimeError(
                "FrozenReadGuard cannot take writes before upgrade()"
            )
        with upgraded.write():
            yield

    def upgrade(self, lock: "ReadWriteLock") -> None:
        """Install the real lock, then drain every pre-upgrade reader.

        The activating thread's own re-entrant reads (if any) are
        discounted — draining them would deadlock the activation that
        sits inside them.
        """
        with self._cond:
            self._upgraded = lock
            while self._count - self._depth() > 0:
                self._cond.wait()


class ReadWriteLock:
    """Re-entrant many-readers / one-writer lock.

    Readers are admitted whenever no writer holds the lock (a thread that
    already holds a read — or the write — is admitted unconditionally, so
    nesting can never deadlock against a waiting writer).  A writer waits
    for exclusivity: no other writer, then no remaining readers.
    """

    #: how long a fresh reader defers to a waiting writer (seconds) —
    #: bounded, so a read taken on behalf of a request that already
    #: holds one can never deadlock, but wide enough that sustained
    #: read load cannot starve the write path
    WRITER_GRACE = 0.05

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: "int | None" = None
        self._write_depth = 0
        self._write_waiters = 0
        self._local = threading.local()

    def _read_depth(self) -> int:
        return getattr(self._local, "depth", 0)

    @contextmanager
    def read(self) -> Iterator[None]:
        me = threading.get_ident()
        depth = self._read_depth()
        if depth or self._writer == me:
            # nested read, or the writer reading its own commit: free
            self._local.depth = depth + 1
            try:
                yield
            finally:
                self._local.depth -= 1
            return
        with self._cond:
            if self._write_waiters and self._writer is None:
                # a writer is draining: pause (bounded) so the reader
                # count can reach zero and the writer can claim
                deadline = time.monotonic() + self.WRITER_GRACE
                while self._write_waiters and self._writer is None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
            while self._writer is not None:
                self._cond.wait()
            self._readers += 1
        self._local.depth = 1
        try:
            yield
        finally:
            self._local.depth = 0
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Exclusive section; claimed only once every reader has drained.

        Deliberately *not* writer-priority: a request may fan work out to
        pool threads that take their own read sections while the request's
        thread already holds one — a writer that blocked new readers while
        draining would deadlock against that. Claim-after-drain admits
        readers until the writer actually holds the lock, trading
        potential writer delay under sustained read load for
        deadlock-freedom across cooperating threads.  The bounded
        :data:`WRITER_GRACE` pause fresh readers take while a writer
        drains is what keeps that delay finite: sustained read traffic
        defers just long enough for the count to reach zero, but a
        cooperating thread is never blocked indefinitely.
        """
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
            else:
                # if this thread itself holds a read it contributed one
                # unit to the reader count — discount it
                mine = 1 if self._read_depth() else 0
                self._write_waiters += 1
                try:
                    while self._writer is not None or self._readers - mine > 0:
                        self._cond.wait()
                finally:
                    self._write_waiters -= 1
                self._writer = me
                self._write_depth = 1
        try:
            yield
        finally:
            with self._cond:
                self._write_depth -= 1
                if self._write_depth == 0:
                    self._writer = None
                    self._cond.notify_all()
