"""Delta arenas over the CSR data graph: writes without rebuilds.

The frozen :class:`~repro.datagraph.graph.FkAdjacency` arrays stay
untouched; a :class:`LiveAdjacency` layers the mutable state over them:

* ``forward`` becomes a private, writable, *growable* copy the first time
  the edge is touched — fancy indexing (``adj.forward[parent_rows]``,
  the columnar generation hot path) keeps working unchanged because the
  array is always current;
* the backward direction keeps the base CSR and merges small per-target
  ``added`` / ``removed`` overlays at read time, preserving the
  ascending-row-order contract of :meth:`backward`.

An untouched edge pays nothing: ``backward_many`` takes the vectorized
CSR fast path until the first overlay entry appears, and again after
:meth:`LiveDataGraph.compacted` folds the deltas into a fresh frozen CSR
generation (one ``bincount`` + ``argsort`` per edge — the same kernel the
offline builder uses, reusing the already-current forward array).
"""

from __future__ import annotations

from bisect import insort
from typing import TYPE_CHECKING

import numpy as np

from repro.datagraph.builder import _csr_from_forward
from repro.datagraph.graph import DataGraph, FkAdjacency

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database
    from repro.db.mutation import RowChange

_EMPTY_ROWS = np.empty(0, dtype=np.int32)


class LiveAdjacency(FkAdjacency):
    """One FK edge with a mutable overlay (see module docstring)."""

    def __init__(self, base: FkAdjacency) -> None:
        super().__init__(
            owner=base.owner,
            column=base.column,
            target=base.target,
            forward=base.forward,
            backward_indptr=base.backward_indptr,
            backward_indices=base.backward_indices,
        )
        self._base_target_count = len(base.backward_indptr) - 1
        self._writable = False
        #: per-target overlays; lists stay sorted ascending, entries are
        #: pruned when they empty so "no overlays" re-enables fast paths
        self._added: dict[int, list[int]] = {}
        self._removed: dict[int, set[int]] = {}

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def _ensure_writable(self, owner_size: int) -> None:
        if not self._writable:
            self.forward = np.array(self.forward, dtype=np.int32, copy=True)
            self._writable = True
        if owner_size > len(self.forward):
            grown = np.full(owner_size, -1, dtype=np.int32)
            grown[: len(self.forward)] = self.forward
            self.forward = grown

    def set_forward(self, owner_row: int, target_row: int) -> None:
        """Point *owner_row* at *target_row* (-1 for NULL), patching both
        directions."""
        self._ensure_writable(owner_row + 1)
        old = int(self.forward[owner_row])
        if old == target_row:
            return
        self.forward[owner_row] = target_row
        if old >= 0:
            self._unlink(owner_row, old)
        if target_row >= 0:
            self._link(owner_row, target_row)

    def _link(self, owner_row: int, target_row: int) -> None:
        removed = self._removed.get(target_row)
        if removed and owner_row in removed:
            removed.discard(owner_row)
            if not removed:
                del self._removed[target_row]
            return
        insort(self._added.setdefault(target_row, []), owner_row)

    def _unlink(self, owner_row: int, target_row: int) -> None:
        added = self._added.get(target_row)
        if added and owner_row in added:
            added.remove(owner_row)
            if not added:
                del self._added[target_row]
            return
        self._removed.setdefault(target_row, set()).add(owner_row)

    @property
    def dirty(self) -> bool:
        return bool(self._added or self._removed)

    @property
    def overlay_size(self) -> int:
        """Total overlay entries (added + removed) on this edge — the
        read-time merge cost the automatic compaction policy bounds."""
        return sum(len(v) for v in self._added.values()) + sum(
            len(v) for v in self._removed.values()
        )

    # ------------------------------------------------------------------ #
    # Reads (merge overlays; ascending order preserved)
    # ------------------------------------------------------------------ #
    def backward(self, target_row: int) -> np.ndarray:
        if target_row < self._base_target_count:
            base = self.backward_indices[
                self.backward_indptr[target_row] : self.backward_indptr[
                    target_row + 1
                ]
            ]
        else:
            base = _EMPTY_ROWS
        added = self._added.get(target_row)
        removed = self._removed.get(target_row)
        if not added and not removed:
            return base
        rows = (
            [r for r in base.tolist() if r not in removed]
            if removed
            else base.tolist()
        )
        if added:
            rows.extend(added)
            rows.sort()
        return np.array(rows, dtype=np.int32)

    def backward_many(
        self, target_rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if not self.dirty and (
            target_rows.size == 0
            or int(target_rows.max()) < self._base_target_count
        ):
            return super().backward_many(target_rows)
        rep_parts: list[np.ndarray] = []
        row_parts: list[np.ndarray] = []
        for pos, target in enumerate(np.asarray(target_rows).tolist()):
            rows = self.backward(int(target))
            if rows.size:
                rep_parts.append(np.full(rows.size, pos, dtype=np.int64))
                row_parts.append(rows)
        if not row_parts:
            return np.empty(0, dtype=np.int64), _EMPTY_ROWS
        return np.concatenate(rep_parts), np.concatenate(row_parts)

    @property
    def edge_count(self) -> int:
        delta = sum(len(v) for v in self._added.values()) - sum(
            len(v) for v in self._removed.values()
        )
        return int(self.backward_indices.size) + delta

    def compacted(self, owner_size: int, target_size: int) -> FkAdjacency:
        """Fold the overlays into a fresh frozen CSR adjacency."""
        forward = np.full(owner_size, -1, dtype=np.int32)
        span = min(owner_size, len(self.forward))
        forward[:span] = self.forward[:span]
        indptr, indices = _csr_from_forward(forward, target_size)
        forward.flags.writeable = False
        indptr.flags.writeable = False
        indices.flags.writeable = False
        return FkAdjacency(
            owner=self.owner,
            column=self.column,
            target=self.target,
            forward=forward,
            backward_indptr=indptr,
            backward_indices=indices,
        )


class LiveDataGraph(DataGraph):
    """The data graph with every adjacency wrapped for incremental writes."""

    def __init__(self, base: DataGraph, db: "Database") -> None:
        super().__init__(
            {
                (adj.owner, adj.column): LiveAdjacency(adj)
                for adj in base.adjacencies()
            }
        )
        self.db = db

    def apply_changes(self, changes: "tuple[RowChange, ...]") -> None:
        """Patch edges to match the committed *changes* (net effect).

        Later changes to the same row win (a transaction may update then
        delete a row); the committed database state is the source of truth
        for resolving FK primary keys to row ids.
        """
        finals: dict[tuple[str, int], "tuple | None"] = {}
        for change in changes:
            finals[(change.table, change.row_id)] = change.new_row
        for (table_name, row_id), final in finals.items():
            schema = self.db.table(table_name).schema
            for fk in schema.foreign_keys:
                adj = self._adj.get((table_name, fk.column))
                if adj is None:
                    continue
                if final is None:
                    target_row = -1
                else:
                    value = final[schema.column_index(fk.column)]
                    target_row = (
                        -1
                        if value is None
                        else self.db.table(fk.ref_table).row_id_for_pk(value)
                    )
                adj.set_forward(row_id, target_row)

    @property
    def overlay_size(self) -> int:
        """Total overlay entries across every adjacency."""
        return sum(
            getattr(adj, "overlay_size", 0) for adj in self._adj.values()
        )

    def compacted(self) -> DataGraph:
        """A fresh frozen-CSR generation reflecting every applied delta."""
        return DataGraph(
            {
                key: adj.compacted(
                    len(self.db.table(adj.owner)), len(self.db.table(adj.target))
                )
                for key, adj in self._adj.items()
            }
        )
