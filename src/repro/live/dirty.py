"""Dirty-subject tracking: which Object Summaries did a mutation touch?

An OS is a join tree rooted at a data subject; a mutated tuple appears in
exactly the summaries whose G_DS path can reach it.  Rather than
invalidating every subject whose table matches (the pre-live behavior),
we *invert* each G_DS join and climb from the touched tuple to the root:

* ``RefJoin`` (parent → child via parent's FK): the inverse is the FK's
  CSR ``backward`` slice — parents pointing at the child;
* ``ReverseJoin`` (children reference the parent): the inverse is one
  ``forward`` lookup — the child's FK value names its parent;
* ``JunctionJoin``: junction rows referencing the child, gathered through
  the junction's parent-side FK.

The walk runs against a graph *state* (the live delta-overlaid graph),
and the caller runs it twice per commit — once on the pre-mutation edges
and once post — so a re-pointed FK dirties both its old and new subjects.
Junction-table rows never appear as G_DS nodes; they seed the walk at the
junction node's parent directly through the junction's own FK values.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from repro.schema_graph.gds import GDS, GDSNode, JunctionJoin, RefJoin, ReverseJoin

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datagraph.graph import DataGraph


def _step_up(graph: "DataGraph", node: GDSNode, rows: set[int]) -> set[int]:
    """Row ids at ``node.parent`` whose *join* children include *rows*."""
    join = node.join
    assert node.parent is not None and join is not None
    parents: set[int] = set()
    if isinstance(join, RefJoin):
        adj = graph.adjacency(node.parent.table, join.fk_column)
        for row in rows:
            parents.update(int(r) for r in adj.backward(row))
    elif isinstance(join, ReverseJoin):
        adj = graph.adjacency(join.child_table, join.fk_column)
        for row in rows:
            if 0 <= row < len(adj.forward):
                parent = int(adj.forward[row])
                if parent >= 0:
                    parents.add(parent)
    elif isinstance(join, JunctionJoin):
        into_parent = graph.adjacency(join.junction_table, join.from_column)
        to_child = graph.adjacency(join.junction_table, join.to_column)
        for row in rows:
            for junction_row in to_child.backward(row):
                if 0 <= junction_row < len(into_parent.forward):
                    parent = int(into_parent.forward[junction_row])
                    if parent >= 0:
                        parents.add(parent)
    else:  # pragma: no cover - exhaustive over JoinSpec
        raise TypeError(f"unknown join spec: {join!r}")
    return parents


def _climb(graph: "DataGraph", node: GDSNode, rows: set[int]) -> set[int]:
    """Subject (root) rows reached by climbing from *rows* at *node*."""
    while node.parent is not None and rows:
        rows = _step_up(graph, node, rows)
        node = node.parent
    return rows


def dirty_subjects(
    gds_by_root: Mapping[str, GDS],
    graph: "DataGraph",
    touched: Iterable[tuple[str, int]],
) -> set[tuple[str, int]]:
    """``(root_table, subject_row)`` pairs whose OS contains a touched row.

    *touched* is (table, row_id) pairs under the supplied graph state.
    """
    subjects: set[tuple[str, int]] = set()
    by_table: dict[str, set[int]] = {}
    for table, row_id in touched:
        by_table.setdefault(table, set()).add(row_id)
    for root_table, gds in gds_by_root.items():
        for node in gds.root.walk():
            rows = by_table.get(node.table)
            if rows:
                for subject in _climb(graph, node, set(rows)):
                    subjects.add((root_table, subject))
            # junction rows are invisible as nodes: seed at the parent
            join = node.join
            if isinstance(join, JunctionJoin) and node.parent is not None:
                junction_rows = by_table.get(join.junction_table)
                if junction_rows:
                    into_parent = graph.adjacency(
                        join.junction_table, join.from_column
                    )
                    seeds = set()
                    for row in junction_rows:
                        if 0 <= row < len(into_parent.forward):
                            parent = int(into_parent.forward[row])
                            if parent >= 0:
                                seeds.add(parent)
                    for subject in _climb(graph, node.parent, seeds):
                        subjects.add((root_table, subject))
    return subjects
