"""Name and word pools for the synthetic generators (deterministic)."""

from __future__ import annotations

FIRST_NAMES = [
    "Alice", "Bruno", "Carla", "Daniel", "Elena", "Farid", "Greta", "Hiro",
    "Irene", "Jorge", "Katja", "Liang", "Maria", "Nikos", "Olga", "Pavel",
    "Qing", "Rosa", "Stefan", "Tomas", "Uma", "Viktor", "Wendy", "Xavier",
    "Yara", "Zoltan", "Amir", "Beatriz", "Chen", "Dmitri", "Esra", "Felipe",
    "Gloria", "Hassan", "Ingrid", "Javier", "Kenji", "Lucia", "Mateo",
    "Nadia", "Omar", "Petra", "Rafael", "Sofia", "Tariq", "Ursula",
    "Vikram", "Willem", "Ximena", "Yusuf",
]

LAST_NAMES = [
    "Almeida", "Bergstrom", "Castellanos", "Dimitriou", "Eriksson",
    "Fontaine", "Gupta", "Hoffmann", "Ivanova", "Jansen", "Kowalski",
    "Lindqvist", "Moreau", "Nakamura", "Oliveira", "Papadopoulos",
    "Quintero", "Rosenberg", "Santos", "Takahashi", "Ullman", "Vasquez",
    "Weber", "Xu", "Yamamoto", "Zhang", "Antoniou", "Bianchi", "Cardoso",
    "Duarte", "Engel", "Ferrari", "Galanis", "Haddad", "Iqbal", "Jimenez",
    "Klein", "Lombardi", "Martens", "Novak", "Okafor", "Petrov", "Ricci",
    "Schneider", "Toledo", "Uchida", "Vogel", "Wagner", "Yilmaz", "Zuniga",
]

CONFERENCE_NAMES = [
    "SIGMOD", "VLDB", "ICDE", "PODS", "EDBT", "CIKM", "KDD", "WWW",
    "SIGIR", "ICDT", "DASFAA", "SSDBM", "WSDM", "SIGCOMM", "SIGGRAPH",
    "SODA", "FOCS", "STOC", "ICML", "NIPS", "AAAI", "IJCAI", "CHI",
    "OSDI", "SOSP", "NSDI", "USENIX-ATC", "EuroSys", "MobiCom", "InfoCom",
]

TITLE_ADJECTIVES = [
    "Efficient", "Scalable", "Robust", "Adaptive", "Incremental",
    "Distributed", "Parallel", "Approximate", "Optimal", "Dynamic",
    "Declarative", "Interactive", "Streaming", "Probabilistic", "Secure",
]

TITLE_NOUNS = [
    "Indexing", "Summarization", "Ranking", "Clustering", "Sampling",
    "Joins", "Aggregation", "Provenance", "Compression", "Partitioning",
    "Caching", "Recovery", "Replication", "Scheduling", "Estimation",
]

TITLE_OBJECTS = [
    "Relational Databases", "Data Streams", "Graph Data", "Spatial Data",
    "Time Series", "Key-Value Stores", "Column Stores", "Sensor Networks",
    "Social Networks", "Web Archives", "Text Corpora", "Log Data",
    "Scientific Workflows", "Probabilistic Data", "Multimedia Content",
]

MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]

ORDER_STATUSES = ["O", "F", "P"]

PART_ADJECTIVES = [
    "anodized", "brushed", "burnished", "plated", "polished", "lacquered",
]

PART_MATERIALS = ["brass", "copper", "nickel", "steel", "tin", "zinc"]

PART_SHAPES = ["rod", "plate", "gear", "valve", "hinge", "coupling", "washer"]

NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]

REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: Nation index → region index, mirroring TPC-H's fixed assignment.
NATION_TO_REGION = [
    0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1,
]
