"""Synthetic DBLP-like bibliographic database.

Schema (Figure 1 of the paper):

    conference(conf_id, name)
    year(year_id, conference_id, year)        -- one row per (conference, year)
    paper(paper_id, title, year_id)
    author(author_id, name)
    writes(writes_id, author_id, paper_id)    -- M:N junction
    cites(cites_id, citing_id, cited_id)      -- M:N self-loop junction

Distributions: author productivity and paper citation counts follow
discrete power laws (preferential attachment), reproducing the OS-size skew
the paper's experiments rely on (prolific authors have OSs of ~1,100+
tuples; Paper OSs are an order of magnitude smaller).

A scripted "Faloutsos family" (Christos, Michalis, Petros) is planted with
high productivity and one famous joint paper, making the paper's running
example (Q1 = "Faloutsos", Examples 3-5) reproducible verbatim.

The module also provides the paper's G_A presets (Figure 13a) and the
Author/Paper G_DS presets with the exact affinities of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.db.database import Database
from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.types import ColumnType
from repro.errors import DatasetError
from repro.ranking.authority import AuthorityRelationship, AuthorityTransferGraph
from repro.schema_graph.affinity import ManualAffinityModel
from repro.schema_graph.gds import GDS, build_gds
from repro.schema_graph.graph import SchemaGraph
from repro.util.rng import derive_rng
from repro.datasets import names as pools

FALOUTSOS_FAMILY = ["Christos Faloutsos", "Michalis Faloutsos", "Petros Faloutsos"]

#: Figure 2's absolute affinities for the Author G_DS.
AUTHOR_GDS_AFFINITIES = {
    "Author": 1.0,
    "Paper": 0.92,
    "Co_Author": 0.82,
    "PaperCites": 0.77,
    "PaperCitedBy": 0.77,
    "Year": 0.83,
    "Conference": 0.78,
}

#: Affinities for the Paper G_DS (structure from Section 6.2; the paper does
#: not print values — these keep the same relative ordering as Figure 2).
PAPER_GDS_AFFINITIES = {
    "Paper": 1.0,
    "Author": 0.85,
    "PaperCites": 0.80,
    "PaperCitedBy": 0.80,
    "Year": 0.85,
    "Conference": 0.80,
}


@dataclass
class DBLPConfig:
    """Generator knobs (defaults give a bench-scale database).

    ``author_zipf`` / ``citation_zipf`` are the power-law exponents for
    author productivity and citation popularity; smaller = more skewed.
    """

    n_authors: int = 300
    n_papers: int = 800
    n_conferences: int = 20
    year_range: tuple[int, int] = (1980, 2011)
    mean_authors_per_paper: float = 2.4
    mean_citations_per_paper: float = 8.0
    author_zipf: float = 1.15
    citation_zipf: float = 1.10
    include_faloutsos_family: bool = True
    seed: int = 7

    def validate(self) -> None:
        if self.n_authors < 3 and self.include_faloutsos_family:
            raise DatasetError("the Faloutsos family needs at least 3 authors")
        if self.n_papers < 1 or self.n_authors < 1 or self.n_conferences < 1:
            raise DatasetError("DBLP sizes must be positive")
        if self.year_range[0] > self.year_range[1]:
            raise DatasetError(f"invalid year range: {self.year_range}")


@dataclass
class DBLPDataset:
    """The generated database plus its graph/ranking presets."""

    db: Database
    config: DBLPConfig
    family_author_ids: list[int] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # G_A presets (Figure 13a)
    # ------------------------------------------------------------------ #
    def ga1(self) -> AuthorityTransferGraph:
        """The paper's default DBLP G_A: Figure 13(a)."""
        return AuthorityTransferGraph(
            [
                AuthorityRelationship(
                    name="writes",
                    kind="junction",
                    table_a="author",
                    table_b="paper",
                    column_a="author_id",
                    column_b="paper_id",
                    junction="writes",
                    rate_forward=0.1,  # Author → Paper
                    rate_backward=0.3,  # Paper → Author
                ),
                AuthorityRelationship(
                    name="cites",
                    kind="junction",
                    table_a="paper",
                    table_b="paper",
                    column_a="citing_id",
                    column_b="cited_id",
                    junction="cites",
                    rate_forward=0.7,  # citing → cited: citations confer authority
                    rate_backward=0.0,  # cited → citing: none
                ),
                AuthorityRelationship(
                    name="paper_year",
                    kind="fk",
                    table_a="paper",
                    table_b="year",
                    column_a="year_id",
                    column_b=None,
                    rate_forward=0.2,
                    rate_backward=0.2,
                ),
                AuthorityRelationship(
                    name="year_conference",
                    kind="fk",
                    table_a="year",
                    table_b="conference",
                    column_a="conference_id",
                    column_b=None,
                    rate_forward=0.3,
                    rate_backward=0.3,
                ),
            ]
        )

    def ga2(self) -> AuthorityTransferGraph:
        """G_A2: common transfer rates (0.3) on every edge (Section 6)."""
        return self.ga1().with_uniform_rates(0.3)

    # ------------------------------------------------------------------ #
    # G_DS presets (Figure 2)
    # ------------------------------------------------------------------ #
    def author_gds(self, max_depth: int = 4) -> GDS:
        """The Author G_DS with Figure 2's labels and affinities."""
        schema_graph = SchemaGraph(self.db)
        overrides = {
            ("Author", "paper_via_author_id"): "Paper",
            ("Paper", "co_author"): "Co_Author",
            ("Paper", "paper_via_citing_id"): "PaperCites",
            ("Paper", "paper_via_cited_id"): "PaperCitedBy",
            ("Paper", "year"): "Year",
            ("Year", "conference"): "Conference",
        }
        model = ManualAffinityModel(AUTHOR_GDS_AFFINITIES, default_edge=0.3)
        return build_gds(
            schema_graph,
            "author",
            model,
            max_depth=max_depth,
            label_overrides=dict(overrides),
            root_label="Author",
        )

    def paper_gds(self, max_depth: int = 3) -> GDS:
        """The Paper G_DS (Section 6.2's structure)."""
        schema_graph = SchemaGraph(self.db)
        overrides = {
            ("Paper", "author_via_paper_id"): "Author",
            ("Paper", "paper_via_citing_id"): "PaperCites",
            ("Paper", "paper_via_cited_id"): "PaperCitedBy",
            ("Paper", "year"): "Year",
            ("Year", "conference"): "Conference",
        }
        model = ManualAffinityModel(PAPER_GDS_AFFINITIES, default_edge=0.3)
        return build_gds(
            schema_graph,
            "paper",
            model,
            max_depth=max_depth,
            label_overrides=dict(overrides),
            root_label="Paper",
        )

    # ------------------------------------------------------------------ #
    # Engine-construction presets (EngineBuilder.from_dataset)
    # ------------------------------------------------------------------ #
    def default_gds(self) -> dict[str, GDS]:
        """The paper's R_DS presets keyed by root table."""
        return {"author": self.author_gds(), "paper": self.paper_gds()}

    def default_store(self):
        """Global ObjectRank under G_A1 — the paper's default DBLP setting."""
        from repro.ranking.objectrank import compute_objectrank

        return compute_objectrank(self.db, self.ga1())

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def author_id_by_name(self, name: str) -> int:
        """Resolve an exact author name to its author_id."""
        table = self.db.table("author")
        for _row_id, row in table.scan():
            if row[table.schema.column_index("name")] == name:
                return row[table.schema.pk_index]
        raise DatasetError(f"no author named {name!r}")


def _dblp_schemas() -> list[TableSchema]:
    text = ColumnType.TEXT
    integer = ColumnType.INT
    return [
        TableSchema(
            "conference",
            [
                Column("conf_id", integer),
                Column("name", text, text_searchable=True),
            ],
            primary_key="conf_id",
        ),
        TableSchema(
            "year",
            [
                Column("year_id", integer),
                Column("conference_id", integer),
                Column("year", integer),
            ],
            primary_key="year_id",
            foreign_keys=[ForeignKey("conference_id", "conference", "conf_id")],
        ),
        TableSchema(
            "paper",
            [
                Column("paper_id", integer),
                Column("title", text, text_searchable=True),
                Column("year_id", integer),
            ],
            primary_key="paper_id",
            foreign_keys=[ForeignKey("year_id", "year", "year_id")],
        ),
        TableSchema(
            "author",
            [
                Column("author_id", integer),
                Column("name", text, text_searchable=True),
            ],
            primary_key="author_id",
        ),
        TableSchema(
            "writes",
            [
                Column("writes_id", integer),
                Column("author_id", integer),
                Column("paper_id", integer),
            ],
            primary_key="writes_id",
            foreign_keys=[
                ForeignKey("author_id", "author", "author_id"),
                ForeignKey("paper_id", "paper", "paper_id"),
            ],
        ),
        TableSchema(
            "cites",
            [
                Column("cites_id", integer),
                Column("citing_id", integer),
                Column("cited_id", integer),
            ],
            primary_key="cites_id",
            foreign_keys=[
                ForeignKey("citing_id", "paper", "paper_id"),
                ForeignKey("cited_id", "paper", "paper_id"),
            ],
        ),
    ]


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def _author_names(config: DBLPConfig, rng: np.random.Generator) -> list[str]:
    names: list[str] = []
    seen: set[str] = set()
    if config.include_faloutsos_family:
        names.extend(FALOUTSOS_FAMILY)
        seen.update(FALOUTSOS_FAMILY)
    attempts = 0
    while len(names) < config.n_authors:
        first = pools.FIRST_NAMES[int(rng.integers(len(pools.FIRST_NAMES)))]
        last = pools.LAST_NAMES[int(rng.integers(len(pools.LAST_NAMES)))]
        candidate = f"{first} {last}"
        if candidate in seen:
            attempts += 1
            if attempts > 50:
                candidate = f"{first} {last} {len(names)}"
            else:
                continue
        seen.add(candidate)
        names.append(candidate)
        attempts = 0
    return names


def _paper_title(rng: np.random.Generator, paper_idx: int) -> str:
    adjective = pools.TITLE_ADJECTIVES[int(rng.integers(len(pools.TITLE_ADJECTIVES)))]
    noun = pools.TITLE_NOUNS[int(rng.integers(len(pools.TITLE_NOUNS)))]
    target = pools.TITLE_OBJECTS[int(rng.integers(len(pools.TITLE_OBJECTS)))]
    return f"{adjective} {noun} for {target} {paper_idx}"


def generate_dblp(config: DBLPConfig | None = None) -> DBLPDataset:
    """Generate a synthetic DBLP-like database (deterministic under seed)."""
    config = config or DBLPConfig()
    config.validate()
    db = Database("dblp")
    for schema in _dblp_schemas():
        db.create_table(schema)

    # ------------------------------------------------------------------ #
    # Conferences
    # ------------------------------------------------------------------ #
    conf_rng = derive_rng(config.seed, "dblp", "conference")
    for conf_id in range(config.n_conferences):
        if conf_id < len(pools.CONFERENCE_NAMES):
            name = pools.CONFERENCE_NAMES[conf_id]
        else:
            name = f"CONF-{conf_id}"
        db.insert("conference", {"conf_id": conf_id, "name": name})

    # ------------------------------------------------------------------ #
    # Authors (family members first: ids 0, 1, 2)
    # ------------------------------------------------------------------ #
    author_rng = derive_rng(config.seed, "dblp", "author")
    author_names = _author_names(config, author_rng)
    for author_id, name in enumerate(author_names):
        db.insert("author", {"author_id": author_id, "name": name})
    family_ids = (
        [author_names.index(n) for n in FALOUTSOS_FAMILY]
        if config.include_faloutsos_family
        else []
    )

    # Productivity ranks: a random permutation, but family members pinned to
    # high-productivity ranks so their OSs are large (Christos: rank 0).
    rank_rng = derive_rng(config.seed, "dblp", "ranks")
    permutation = list(rank_rng.permutation(config.n_authors))
    for pinned_rank, author_id in zip((0, 4, 7), family_ids):
        current = permutation.index(author_id)
        swap_with = permutation[pinned_rank]
        permutation[pinned_rank], permutation[current] = author_id, swap_with
    author_weights = _zipf_weights(config.n_authors, config.author_zipf)
    weight_of_author = np.empty(config.n_authors)
    for rank, author_id in enumerate(permutation):
        weight_of_author[author_id] = author_weights[rank]
    weight_of_author /= weight_of_author.sum()

    # ------------------------------------------------------------------ #
    # Papers, years, authorship
    # ------------------------------------------------------------------ #
    paper_rng = derive_rng(config.seed, "dblp", "paper")
    year_ids: dict[tuple[int, int], int] = {}
    writes_id = 0
    lo_year, hi_year = config.year_range

    def year_id_for(conf_id: int, year: int) -> int:
        key = (conf_id, year)
        if key not in year_ids:
            new_id = len(year_ids)
            year_ids[key] = new_id
            db.insert(
                "year", {"year_id": new_id, "conference_id": conf_id, "year": year}
            )
        return year_ids[key]

    paper_authors: list[list[int]] = []
    for paper_id in range(config.n_papers):
        conf_id = int(paper_rng.integers(config.n_conferences))
        year = int(paper_rng.integers(lo_year, hi_year + 1))
        db.insert(
            "paper",
            {
                "paper_id": paper_id,
                "title": _paper_title(paper_rng, paper_id),
                "year_id": year_id_for(conf_id, year),
            },
        )
        n_authors = max(1, int(paper_rng.poisson(config.mean_authors_per_paper)))
        n_authors = min(n_authors, config.n_authors)
        chosen = paper_rng.choice(
            config.n_authors, size=n_authors, replace=False, p=weight_of_author
        )
        authors = [int(a) for a in chosen]
        paper_authors.append(authors)
        for author_id in authors:
            db.insert(
                "writes",
                {"writes_id": writes_id, "author_id": author_id, "paper_id": paper_id},
            )
            writes_id += 1

    # The famous family joint paper (the "Power-law" paper of Example 4):
    # ensure one paper is co-authored by all three family members.
    if family_ids:
        joint_paper = 0  # paper 0 becomes the joint paper
        existing = set(paper_authors[joint_paper])
        for author_id in family_ids:
            if author_id not in existing:
                db.insert(
                    "writes",
                    {
                        "writes_id": writes_id,
                        "author_id": author_id,
                        "paper_id": joint_paper,
                    },
                )
                writes_id += 1
                paper_authors[joint_paper].append(author_id)

    # ------------------------------------------------------------------ #
    # Citations: preferential attachment, correlated with author standing.
    #
    # A paper's citation propensity combines (a) the productivity weights
    # of its authors (prolific authors' papers are better cited — the
    # correlation real bibliographic data exhibits, and the reason the
    # paper's important Author OSs are near-monotone in local importance)
    # and (b) a log-normal popularity jitter.  ``citation_zipf`` shapes the
    # tail via a power on the combined weight.
    # ------------------------------------------------------------------ #
    cite_rng = derive_rng(config.seed, "dblp", "cites")
    author_standing = np.array(
        [sum(weight_of_author[a] for a in authors) for authors in paper_authors]
    )
    jitter = np.exp(0.6 * cite_rng.standard_normal(config.n_papers))
    weight_of_paper = (author_standing ** config.citation_zipf) * jitter
    weight_of_paper /= weight_of_paper.sum()

    cites_id = 0
    seen_edges: set[tuple[int, int]] = set()
    for citing in range(config.n_papers):
        n_cites = int(cite_rng.poisson(config.mean_citations_per_paper))
        n_cites = min(n_cites, config.n_papers - 1)
        if n_cites == 0:
            continue
        targets = cite_rng.choice(
            config.n_papers,
            size=min(n_cites * 2, config.n_papers),
            replace=False,
            p=weight_of_paper,
        )
        added = 0
        for cited in (int(t) for t in targets):
            if added >= n_cites:
                break
            if cited == citing or (citing, cited) in seen_edges:
                continue
            seen_edges.add((citing, cited))
            db.insert(
                "cites",
                {"cites_id": cites_id, "citing_id": citing, "cited_id": cited},
            )
            cites_id += 1
            added += 1

    db.ensure_fk_indexes()
    return DBLPDataset(db=db, config=config, family_author_ids=family_ids)


def small_dblp(seed: int = 7) -> DBLPDataset:
    """A test-scale DBLP (hundreds of tuples; fast enough for unit tests)."""
    return generate_dblp(
        DBLPConfig(
            n_authors=40,
            n_papers=90,
            n_conferences=8,
            mean_citations_per_paper=4.0,
            seed=seed,
        )
    )


def bench_dblp(seed: int = 7) -> DBLPDataset:
    """The benchmark-scale DBLP used by the Figure 8-10 drivers."""
    return generate_dblp(DBLPConfig(seed=seed))
