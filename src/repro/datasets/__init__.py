"""Synthetic dataset generators.

The paper evaluates on the real DBLP dump and TPC-H SF-1.  Neither is
available offline, so this package generates structurally faithful synthetic
equivalents (see DESIGN.md §3 for the substitution argument):

* :mod:`repro.datasets.dblp` — an academic-publications database with
  power-law citation and co-authorship distributions, plus a scripted
  "Faloutsos family" of three related prolific authors so the paper's
  running example (Examples 1-5, Q1 = "Faloutsos") is reproducible;
* :mod:`repro.datasets.tpch` — a TPC-H-like trading database with a scale
  factor, carrying the value columns (TotalPrice, ExtendedPrice, SupplyCost,
  RetailPrice) that ValueRank consumes.

Both generators are fully deterministic under their ``seed``.
"""

from repro.datasets.dblp import DBLPConfig, DBLPDataset, generate_dblp
from repro.datasets.tpch import TPCHConfig, TPCHDataset, generate_tpch

__all__ = [
    "DBLPConfig",
    "DBLPDataset",
    "generate_dblp",
    "TPCHConfig",
    "TPCHDataset",
    "generate_tpch",
]
