"""Synthetic TPC-H-like trading database.

Schema (Figure 11 of the paper):

    region(region_id, name)
    nation(nation_id, name, region_id)
    customer(cust_id, name, mktsegment, acctbal, nation_id)
    supplier(supp_id, name, acctbal, nation_id)
    part(part_id, name, brand, retailprice)
    partsupp(ps_id, part_id, supp_id, availqty, supplycost, comment)
    orders(order_id, cust_id, orderyear, orderstatus, totalprice)
    lineitem(li_id, order_id, ps_id, quantity, extendedprice, discount)

``scale_factor`` scales the row counts with (roughly) TPC-H's SF-relative
cardinalities; value columns follow TPC-H-like ranges so ValueRank's value
functions (Figure 13b) have realistic spread.  Note ``partsupp`` carries a
``comment`` column on purpose: the paper's attribute-selection example
excludes exactly that column from Customer OSs via the θ′ filter.

The module also provides the paper's TPC-H G_A presets (Figure 13b, with
value functions; G_A2 = same rates without values) and Customer/Supplier
G_DS presets with the affinities of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.database import Database
from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.types import ColumnType
from repro.errors import DatasetError
from repro.ranking.authority import (
    AuthorityRelationship,
    AuthorityTransferGraph,
    ValueFunction,
)
from repro.schema_graph.affinity import ManualAffinityModel
from repro.schema_graph.gds import GDS, build_gds
from repro.schema_graph.graph import SchemaGraph
from repro.util.rng import derive_rng
from repro.datasets import names as pools

#: Figure 12's absolute affinities for the Customer G_DS.  The duplicated
#: branches (Supplier under Nation; the Supplier/Parts under Partsupp; the
#: Partsupp/Lineitem/Parts under that Supplier) carry the figure's values.
CUSTOMER_GDS_AFFINITIES = {
    "Customer": 1.0,
    "Nation": 0.97,
    "Region": 0.91,
    "SupplierOfNation": 0.52,
    "PartsuppOfNationSupplier": 0.43,
    "LineitemOfNationSupplier": 0.34,
    "PartsOfNationSupplier": 0.36,
    "Order": 0.95,
    "Lineitem": 0.87,
    "Partsupp": 0.77,
    "Parts": 0.65,
    "Supplier": 0.65,
}

#: The Supplier G_DS is not printed in the paper; these values give the same
#: relative structure (trading documents close, reference data closer) and a
#: θ=0.7 cut that keeps Nation/Region/Partsupp/Parts/Lineitem/Order — which
#: reproduces the paper's reported average Supplier OS sizes (~1,341).
SUPPLIER_GDS_AFFINITIES = {
    "Supplier": 1.0,
    "Nation": 0.97,
    "Region": 0.91,
    "CustomerOfNation": 0.52,
    "Partsupp": 0.92,
    "Parts": 0.80,
    "Lineitem": 0.84,
    "Order": 0.75,
    "Customer": 0.55,
}


@dataclass
class TPCHConfig:
    """Generator knobs.  ``scale_factor=1.0`` would be full TPC-H SF-1
    cardinalities (8.6M tuples) — far beyond what the in-memory engine needs
    for shape-faithful experiments; the presets use 0.001-0.01."""

    scale_factor: float = 0.004
    seed: int = 11

    def validate(self) -> None:
        if self.scale_factor <= 0:
            raise DatasetError(f"scale factor must be positive: {self.scale_factor}")

    # TPC-H SF-1 cardinalities.
    @property
    def n_customers(self) -> int:
        return max(5, int(150_000 * self.scale_factor))

    @property
    def n_suppliers(self) -> int:
        return max(3, int(10_000 * self.scale_factor))

    @property
    def n_parts(self) -> int:
        return max(5, int(200_000 * self.scale_factor))

    @property
    def n_partsupps(self) -> int:
        return max(8, int(800_000 * self.scale_factor))

    @property
    def n_orders(self) -> int:
        return max(10, int(1_500_000 * self.scale_factor))

    @property
    def n_lineitems(self) -> int:
        return max(20, int(6_000_000 * self.scale_factor))


@dataclass
class TPCHDataset:
    """The generated database plus its graph/ranking presets."""

    db: Database
    config: TPCHConfig

    # ------------------------------------------------------------------ #
    # G_A presets (Figure 13b)
    # ------------------------------------------------------------------ #
    def ga1(self) -> AuthorityTransferGraph:
        """The paper's TPC-H G_A with ValueRank value functions."""
        return AuthorityTransferGraph(
            [
                AuthorityRelationship(
                    name="customer_orders",
                    kind="fk",
                    table_a="orders",
                    table_b="customer",
                    column_a="cust_id",
                    column_b=None,
                    # Order → its customer: 0.5·f(TotalPrice) — a $100 order
                    # passes more authority than a $10 one (the paper's
                    # motivating example for ValueRank).
                    rate_forward=0.5,
                    source_value_forward=ValueFunction("orders", "totalprice"),
                    # Customer → orders: 0.1, split by TotalPrice.
                    rate_backward=0.1,
                    value_backward=ValueFunction("orders", "totalprice"),
                ),
                AuthorityRelationship(
                    name="order_lineitems",
                    kind="fk",
                    table_a="lineitem",
                    table_b="orders",
                    column_a="order_id",
                    column_b=None,
                    # Lineitem → its order: 0.3·f(ExtendedPrice).
                    rate_forward=0.3,
                    source_value_forward=ValueFunction("lineitem", "extendedprice"),
                    # Order → lineitems: 0.1, split by ExtendedPrice.
                    rate_backward=0.1,
                    value_backward=ValueFunction("lineitem", "extendedprice"),
                ),
                AuthorityRelationship(
                    name="lineitem_partsupp",
                    kind="fk",
                    table_a="lineitem",
                    table_b="partsupp",
                    column_a="ps_id",
                    column_b=None,
                    rate_forward=0.2,  # lineitem → its partsupp
                    rate_backward=0.1,  # partsupp → lineitems, by ExtendedPrice
                    value_backward=ValueFunction("lineitem", "extendedprice"),
                ),
                AuthorityRelationship(
                    name="partsupp_part",
                    kind="fk",
                    table_a="partsupp",
                    table_b="part",
                    column_a="part_id",
                    column_b=None,
                    # Partsupp → its part: 0.1·f(SupplyCost).
                    rate_forward=0.1,
                    source_value_forward=ValueFunction("partsupp", "supplycost"),
                    rate_backward=0.1,
                ),
                AuthorityRelationship(
                    name="partsupp_supplier",
                    kind="fk",
                    table_a="partsupp",
                    table_b="supplier",
                    column_a="supp_id",
                    column_b=None,
                    # Partsupp → its supplier: 0.2·f(SupplyCost).
                    rate_forward=0.2,
                    source_value_forward=ValueFunction("partsupp", "supplycost"),
                    # Supplier → partsupps: 0.2, split by SupplyCost.
                    rate_backward=0.2,
                    value_backward=ValueFunction("partsupp", "supplycost"),
                ),
                AuthorityRelationship(
                    name="customer_nation",
                    kind="fk",
                    table_a="customer",
                    table_b="nation",
                    column_a="nation_id",
                    column_b=None,
                    rate_forward=0.1,
                    rate_backward=0.1,
                ),
                AuthorityRelationship(
                    name="supplier_nation",
                    kind="fk",
                    table_a="supplier",
                    table_b="nation",
                    column_a="nation_id",
                    column_b=None,
                    rate_forward=0.1,
                    rate_backward=0.1,
                ),
                AuthorityRelationship(
                    name="nation_region",
                    kind="fk",
                    table_a="nation",
                    table_b="region",
                    column_a="region_id",
                    column_b=None,
                    rate_forward=0.3,
                    rate_backward=0.2,
                ),
            ]
        )

    def ga2(self) -> AuthorityTransferGraph:
        """G_A2: the ObjectRank version of G_A1 — values neglected."""
        return self.ga1().without_values()

    # ------------------------------------------------------------------ #
    # G_DS presets (Figure 12)
    # ------------------------------------------------------------------ #
    def customer_gds(self, max_depth: int = 5) -> GDS:
        """The Customer G_DS with Figure 12's labels and affinities."""
        schema_graph = SchemaGraph(self.db)
        overrides = {
            ("Customer", "nation"): "Nation",
            ("Nation", "region"): "Region",
            ("Nation", "supplier"): "SupplierOfNation",
            ("SupplierOfNation", "partsupp"): "PartsuppOfNationSupplier",
            ("PartsuppOfNationSupplier", "lineitem"): "LineitemOfNationSupplier",
            ("PartsuppOfNationSupplier", "part"): "PartsOfNationSupplier",
            ("Customer", "orders"): "Order",
            ("Order", "lineitem"): "Lineitem",
            ("Lineitem", "partsupp"): "Partsupp",
            ("Partsupp", "part"): "Parts",
            ("Partsupp", "supplier"): "Supplier",
        }
        model = ManualAffinityModel(CUSTOMER_GDS_AFFINITIES, default_edge=0.3)
        return build_gds(
            schema_graph,
            "customer",
            model,
            max_depth=max_depth,
            label_overrides=overrides,
            root_label="Customer",
        )

    def supplier_gds(self, max_depth: int = 5) -> GDS:
        """The Supplier G_DS (structure mirrored from Figure 12)."""
        schema_graph = SchemaGraph(self.db)
        overrides = {
            ("Supplier", "nation"): "Nation",
            ("Nation", "region"): "Region",
            ("Nation", "customer"): "CustomerOfNation",
            ("Supplier", "partsupp"): "Partsupp",
            ("Partsupp", "part"): "Parts",
            ("Partsupp", "lineitem"): "Lineitem",
            ("Lineitem", "orders"): "Order",
            ("Order", "customer"): "Customer",
        }
        model = ManualAffinityModel(SUPPLIER_GDS_AFFINITIES, default_edge=0.3)
        return build_gds(
            schema_graph,
            "supplier",
            model,
            max_depth=max_depth,
            label_overrides=overrides,
            root_label="Supplier",
        )

    # ------------------------------------------------------------------ #
    # Engine-construction presets (EngineBuilder.from_dataset)
    # ------------------------------------------------------------------ #
    def default_gds(self) -> dict[str, GDS]:
        """The paper's R_DS presets keyed by root table."""
        return {"customer": self.customer_gds(), "supplier": self.supplier_gds()}

    def default_store(self):
        """Global ValueRank under G_A1 — the paper's default TPC-H setting."""
        from repro.ranking.valuerank import compute_valuerank

        return compute_valuerank(self.db, self.ga1())


def _tpch_schemas() -> list[TableSchema]:
    text = ColumnType.TEXT
    integer = ColumnType.INT
    real = ColumnType.FLOAT
    return [
        TableSchema(
            "region",
            [Column("region_id", integer), Column("name", text, text_searchable=True)],
            primary_key="region_id",
        ),
        TableSchema(
            "nation",
            [
                Column("nation_id", integer),
                Column("name", text, text_searchable=True),
                Column("region_id", integer),
            ],
            primary_key="nation_id",
            foreign_keys=[ForeignKey("region_id", "region", "region_id")],
        ),
        TableSchema(
            "customer",
            [
                Column("cust_id", integer),
                Column("name", text, text_searchable=True),
                Column("mktsegment", text),
                Column("acctbal", real),
                Column("nation_id", integer),
            ],
            primary_key="cust_id",
            foreign_keys=[ForeignKey("nation_id", "nation", "nation_id")],
        ),
        TableSchema(
            "supplier",
            [
                Column("supp_id", integer),
                Column("name", text, text_searchable=True),
                Column("acctbal", real),
                Column("nation_id", integer),
            ],
            primary_key="supp_id",
            foreign_keys=[ForeignKey("nation_id", "nation", "nation_id")],
        ),
        TableSchema(
            "part",
            [
                Column("part_id", integer),
                Column("name", text, text_searchable=True),
                Column("brand", text),
                Column("retailprice", real),
            ],
            primary_key="part_id",
        ),
        TableSchema(
            "partsupp",
            [
                Column("ps_id", integer),
                Column("part_id", integer),
                Column("supp_id", integer),
                Column("availqty", integer),
                Column("supplycost", real),
                Column("comment", text),
            ],
            primary_key="ps_id",
            foreign_keys=[
                ForeignKey("part_id", "part", "part_id"),
                ForeignKey("supp_id", "supplier", "supp_id"),
            ],
        ),
        TableSchema(
            "orders",
            [
                Column("order_id", integer),
                Column("cust_id", integer),
                Column("orderyear", integer),
                Column("orderstatus", text),
                Column("totalprice", real),
            ],
            primary_key="order_id",
            foreign_keys=[ForeignKey("cust_id", "customer", "cust_id")],
        ),
        TableSchema(
            "lineitem",
            [
                Column("li_id", integer),
                Column("order_id", integer),
                Column("ps_id", integer),
                Column("quantity", integer),
                Column("extendedprice", real),
                Column("discount", real),
            ],
            primary_key="li_id",
            foreign_keys=[
                ForeignKey("order_id", "orders", "order_id"),
                ForeignKey("ps_id", "partsupp", "ps_id"),
            ],
        ),
    ]


def generate_tpch(config: TPCHConfig | None = None) -> TPCHDataset:
    """Generate a synthetic TPC-H-like database (deterministic under seed)."""
    config = config or TPCHConfig()
    config.validate()
    db = Database("tpch")
    for schema in _tpch_schemas():
        db.create_table(schema)

    # Regions and nations: TPC-H's fixed 5/25 reference data.
    for region_id, name in enumerate(pools.REGION_NAMES):
        db.insert("region", {"region_id": region_id, "name": name})
    for nation_id, name in enumerate(pools.NATION_NAMES):
        db.insert(
            "nation",
            {
                "nation_id": nation_id,
                "name": name,
                "region_id": pools.NATION_TO_REGION[nation_id],
            },
        )
    n_nations = len(pools.NATION_NAMES)

    rng = derive_rng(config.seed, "tpch")

    for cust_id in range(config.n_customers):
        db.insert(
            "customer",
            {
                "cust_id": cust_id,
                "name": f"Customer#{cust_id:06d}",
                "mktsegment": pools.MARKET_SEGMENTS[
                    int(rng.integers(len(pools.MARKET_SEGMENTS)))
                ],
                "acctbal": round(float(rng.uniform(-999.99, 9999.99)), 2),
                "nation_id": int(rng.integers(n_nations)),
            },
        )

    for supp_id in range(config.n_suppliers):
        db.insert(
            "supplier",
            {
                "supp_id": supp_id,
                "name": f"Supplier#{supp_id:06d}",
                "acctbal": round(float(rng.uniform(-999.99, 9999.99)), 2),
                "nation_id": int(rng.integers(n_nations)),
            },
        )

    for part_id in range(config.n_parts):
        adjective = pools.PART_ADJECTIVES[int(rng.integers(len(pools.PART_ADJECTIVES)))]
        material = pools.PART_MATERIALS[int(rng.integers(len(pools.PART_MATERIALS)))]
        shape = pools.PART_SHAPES[int(rng.integers(len(pools.PART_SHAPES)))]
        db.insert(
            "part",
            {
                "part_id": part_id,
                "name": f"{adjective} {material} {shape}",
                "brand": f"Brand#{int(rng.integers(1, 6))}{int(rng.integers(1, 6))}",
                "retailprice": round(900.0 + (part_id % 1000) + float(rng.uniform(0, 100)), 2),
            },
        )

    # Partsupp: each (part, supplier) pair at most once, TPC-H style 4 per part.
    ps_pairs: set[tuple[int, int]] = set()
    ps_id = 0
    while ps_id < config.n_partsupps:
        part_id = int(rng.integers(config.n_parts))
        supp_id = int(rng.integers(config.n_suppliers))
        if (part_id, supp_id) in ps_pairs:
            continue
        ps_pairs.add((part_id, supp_id))
        db.insert(
            "partsupp",
            {
                "ps_id": ps_id,
                "part_id": part_id,
                "supp_id": supp_id,
                "availqty": int(rng.integers(1, 10_000)),
                "supplycost": round(float(rng.uniform(1.0, 1000.0)), 2),
                "comment": f"routine restock note {ps_id}",
            },
        )
        ps_id += 1

    # Orders: skewed customer activity (some customers order much more).
    customer_weights = np.arange(1, config.n_customers + 1, dtype=float) ** -0.6
    customer_weights /= customer_weights.sum()
    customer_perm = rng.permutation(config.n_customers)
    weight_of_customer = np.empty(config.n_customers)
    for rank, cust in enumerate(customer_perm):
        weight_of_customer[cust] = customer_weights[rank]
    weight_of_customer /= weight_of_customer.sum()

    order_customers = rng.choice(
        config.n_customers, size=config.n_orders, p=weight_of_customer
    )

    # Lineitems are drawn first so each order's TotalPrice can be derived
    # from its lineitems (as in real TPC-H, where O_TOTALPRICE is computed
    # from L_EXTENDEDPRICE) — this keeps the ValueRank authority flow
    # consistent between the order and lineitem levels.
    order_of_lineitem = rng.integers(0, config.n_orders, size=config.n_lineitems)
    ps_of_lineitem = rng.integers(0, config.n_partsupps, size=config.n_lineitems)
    quantities = rng.integers(1, 51, size=config.n_lineitems)
    unit_prices = rng.uniform(900.0, 2000.0, size=config.n_lineitems)
    discounts = rng.uniform(0.0, 0.1, size=config.n_lineitems)

    order_totals = np.full(config.n_orders, 0.0)
    extended_prices = np.empty(config.n_lineitems)
    for li_id in range(config.n_lineitems):
        extended = round(float(quantities[li_id]) * float(unit_prices[li_id]), 2)
        extended_prices[li_id] = extended
        order_totals[order_of_lineitem[li_id]] += extended * (
            1.0 - float(discounts[li_id])
        )

    for order_id in range(config.n_orders):
        total = order_totals[order_id]
        if total == 0.0:
            # An order with no lineitems still has a (small) invoice value.
            total = float(rng.uniform(900.0, 2000.0))
        db.insert(
            "orders",
            {
                "order_id": order_id,
                "cust_id": int(order_customers[order_id]),
                "orderyear": int(rng.integers(1992, 1999)),
                "orderstatus": pools.ORDER_STATUSES[
                    int(rng.integers(len(pools.ORDER_STATUSES)))
                ],
                "totalprice": round(total, 2),
            },
        )

    for li_id in range(config.n_lineitems):
        db.insert(
            "lineitem",
            {
                "li_id": li_id,
                "order_id": int(order_of_lineitem[li_id]),
                "ps_id": int(ps_of_lineitem[li_id]),
                "quantity": int(quantities[li_id]),
                "extendedprice": float(extended_prices[li_id]),
                "discount": round(float(discounts[li_id]), 2),
            },
        )

    db.ensure_fk_indexes()
    return TPCHDataset(db=db, config=config)


def small_tpch(seed: int = 11) -> TPCHDataset:
    """A test-scale TPC-H (hundreds of tuples)."""
    return generate_tpch(TPCHConfig(scale_factor=0.0006, seed=seed))


def bench_tpch(seed: int = 11) -> TPCHDataset:
    """The benchmark-scale TPC-H used by the Figure 8-10 drivers."""
    return generate_tpch(TPCHConfig(scale_factor=0.004, seed=seed))
