"""Efficiency experiments — Figure 10.

Three drivers:

* :func:`efficiency_experiment` — Figures 10(a)-(d): size-l computation
  time per algorithm × {complete, prelim} source, over a set of OSs and a
  range of l (generation time excluded, exactly as the paper's plots);
* :func:`scalability_experiment` — Figure 10(e): time vs |OS| at fixed l;
* :func:`breakdown_experiment` — Figure 10(f): cost split into OS
  generation (data-graph vs database backends) and size-l computation,
  plus prelim-l OS sizes.

DP runs are guarded by ``dp_budget_nodes``: the paper stopped DP "after 30
min." on moderate-to-large OSs; we skip DP above the budget and report NaN,
keeping bench wall-clock sane while preserving the blow-up story.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable

from repro.core.os_tree import ObjectSummary, SizeLResult
from repro.core.registry import get_algorithm

SizeLAlgorithm = Callable[[ObjectSummary, int], SizeLResult]

#: Figure 10's three methods, resolved through the algorithm registry
#: ("optimal" is the paper's name for the DP).
ALGORITHMS: dict[str, SizeLAlgorithm] = {
    "bottom_up": get_algorithm("bottom_up"),
    "top_path": get_algorithm("top_path"),
    "optimal": get_algorithm("dp"),
}


@dataclass(frozen=True)
class EfficiencyRow:
    """One timing observation (seconds; NaN when skipped over budget)."""

    method: str
    source: str
    l: int  # noqa: E741
    seconds: float
    mean_os_size: float


def _time_algorithm(algorithm: SizeLAlgorithm, tree: ObjectSummary, l: int) -> float:  # noqa: E741
    start = time.perf_counter()
    algorithm(tree, l)
    return time.perf_counter() - start


def efficiency_experiment(
    pairs: list[tuple[ObjectSummary, ObjectSummary]],
    l_values: list[int],
    algorithms: dict[str, SizeLAlgorithm] | None = None,
    dp_budget_nodes: int | None = 20_000,
) -> list[EfficiencyRow]:
    """Figures 10(a)-(d): mean size-l computation time per method/source/l.

    ``dp_budget_nodes`` bounds |OS| · l for the optimal method (DP cost is
    Θ(n·l) table cells); pairs exceeding it are skipped (NaN), mirroring
    the paper's 30-minute cut-off for DP on large OSs.
    """
    algorithms = algorithms or ALGORITHMS
    rows: list[EfficiencyRow] = []
    for method_name, algorithm in algorithms.items():
        for source_idx, source_name in ((0, "complete"), (1, "prelim")):
            for l in l_values:  # noqa: E741
                samples: list[float] = []
                sizes: list[int] = []
                skipped = False
                for pair in pairs:
                    tree = pair[source_idx]
                    if (
                        method_name == "optimal"
                        and dp_budget_nodes is not None
                        and tree.size * l > dp_budget_nodes
                    ):
                        skipped = True
                        continue
                    samples.append(_time_algorithm(algorithm, tree, l))
                    sizes.append(tree.size)
                if samples and not skipped:
                    seconds = sum(samples) / len(samples)
                elif samples:
                    seconds = sum(samples) / len(samples)  # partial mean
                else:
                    seconds = math.nan
                rows.append(
                    EfficiencyRow(
                        method=method_name,
                        source=source_name,
                        l=l,
                        seconds=seconds,
                        mean_os_size=(sum(sizes) / len(sizes)) if sizes else math.nan,
                    )
                )
    return rows


def scalability_experiment(
    trees: list[ObjectSummary],
    l: int = 10,  # noqa: E741
    algorithms: dict[str, SizeLAlgorithm] | None = None,
    dp_budget_nodes: int | None = 50_000,
) -> list[EfficiencyRow]:
    """Figure 10(e): per-OS timing at fixed l, for OSs of graded sizes."""
    algorithms = algorithms or ALGORITHMS
    rows: list[EfficiencyRow] = []
    for tree in sorted(trees, key=lambda t: t.size):
        for method_name, algorithm in algorithms.items():
            if (
                method_name == "optimal"
                and dp_budget_nodes is not None
                and tree.size * l > dp_budget_nodes
            ):
                seconds = math.nan
            else:
                seconds = _time_algorithm(algorithm, tree, l)
            rows.append(
                EfficiencyRow(
                    method=method_name,
                    source="complete",
                    l=l,
                    seconds=seconds,
                    mean_os_size=float(tree.size),
                )
            )
    return rows


@dataclass(frozen=True)
class BreakdownRow:
    """One bar of Figure 10(f): generation + computation cost split."""

    label: str
    l: int  # noqa: E741
    generation_seconds: float
    computation_seconds: float
    initial_os_size: float
    io_accesses: float


def breakdown_experiment(
    engine: "SizeLEngine",  # noqa: F821 - forward ref, avoids import cycle
    rds_table: str,
    row_ids: list[int],
    l_values: list[int],
    algorithms: dict[str, SizeLAlgorithm] | None = None,
) -> list[BreakdownRow]:
    """Figure 10(f): generation-vs-computation cost split per method.

    For each l: complete-OS generation is timed on both backends (data
    graph and database, the latter with I/O counting); prelim-l generation
    on the data-graph backend; then each algorithm is timed on both initial
    OSs.  Returns one row per (generation or computation) bar.
    """
    algorithms = algorithms or {
        "bottom_up": get_algorithm("bottom_up"),
        "top_path": get_algorithm("top_path"),
    }
    # The data graph is an offline index (its build cost is reported by the
    # DGBUILD bench, as in the paper's §6.3); build it before timing so the
    # first generation call does not absorb the one-time construction.
    _ = engine.data_graph
    engine.complete_os(rds_table, row_ids[0], backend="datagraph")  # warm caches
    engine.complete_os(rds_table, row_ids[0], backend="database")
    rows: list[BreakdownRow] = []
    for l in l_values:  # noqa: E741
        gen_stats: dict[str, tuple[float, float, float]] = {}
        complete_trees: list[ObjectSummary] = []
        prelim_trees: list[ObjectSummary] = []

        for backend_name in ("datagraph", "database"):
            engine.query_interface.reset_counters()
            start = time.perf_counter()
            trees = [
                engine.complete_os(rds_table, row_id, backend=backend_name)
                for row_id in row_ids
            ]
            elapsed = (time.perf_counter() - start) / len(row_ids)
            io = engine.query_interface.io_accesses / len(row_ids)
            size = sum(t.size for t in trees) / len(trees)
            gen_stats[f"complete[{backend_name}]"] = (elapsed, size, io)
            if backend_name == "datagraph":
                complete_trees = trees

        engine.query_interface.reset_counters()
        start = time.perf_counter()
        for row_id in row_ids:
            prelim, _stats = engine.prelim_os(rds_table, row_id, l)
            prelim_trees.append(prelim)
        elapsed = (time.perf_counter() - start) / len(row_ids)
        size = sum(t.size for t in prelim_trees) / len(prelim_trees)
        gen_stats["prelim[datagraph]"] = (elapsed, size, 0.0)

        engine.query_interface.reset_counters()
        start = time.perf_counter()
        prelim_db_trees = []
        for row_id in row_ids:
            prelim, _stats = engine.prelim_os(rds_table, row_id, l, backend="database")
            prelim_db_trees.append(prelim)
        elapsed = (time.perf_counter() - start) / len(row_ids)
        io = engine.query_interface.io_accesses / len(row_ids)
        size = sum(t.size for t in prelim_db_trees) / len(prelim_db_trees)
        gen_stats["prelim[database]"] = (elapsed, size, io)

        for gen_label, (gen_seconds, mean_size, io) in gen_stats.items():
            source_trees = prelim_trees if gen_label.startswith("prelim") else complete_trees
            for method_name, algorithm in algorithms.items():
                start = time.perf_counter()
                for tree in source_trees:
                    algorithm(tree, l)
                comp_seconds = (time.perf_counter() - start) / len(source_trees)
                rows.append(
                    BreakdownRow(
                        label=f"{method_name} on {gen_label}",
                        l=l,
                        generation_seconds=gen_seconds,
                        computation_seconds=comp_seconds,
                        initial_os_size=mean_size,
                        io_accesses=io,
                    )
                )
    return rows
