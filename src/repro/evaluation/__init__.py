"""The Section-6 experiment harness.

Drivers for every result figure of the paper:

* :mod:`repro.evaluation.evaluators` — simulated human evaluators (the
  paper used 11 DBLP authors and 8 professors; see DESIGN.md §3/§6 for the
  substitution model);
* :mod:`repro.evaluation.effectiveness` — Figure 8 (+ §6.1 in-text results);
* :mod:`repro.evaluation.quality` — Figure 9 approximation quality;
* :mod:`repro.evaluation.efficiency` — Figure 10 runtime/scalability/
  breakdown;
* :mod:`repro.evaluation.snippet_baseline` — the Google Desktop comparative
  evaluation;
* :mod:`repro.evaluation.reporting` — plain-text series tables matching the
  figures' axes.
"""

from repro.evaluation.evaluators import EvaluatorConfig, SimulatedEvaluator, reweight
from repro.evaluation.effectiveness import (
    EffectivenessRow,
    effectiveness_experiment,
    greedy_effectiveness_impact,
)
from repro.evaluation.quality import QualityRow, quality_experiment
from repro.evaluation.efficiency import (
    EfficiencyRow,
    breakdown_experiment,
    efficiency_experiment,
    scalability_experiment,
)
from repro.evaluation.snippet_baseline import snippet_overlap_experiment, static_snippet
from repro.evaluation.reporting import pivot_table, rows_to_table

__all__ = [
    "EvaluatorConfig",
    "SimulatedEvaluator",
    "reweight",
    "EffectivenessRow",
    "effectiveness_experiment",
    "greedy_effectiveness_impact",
    "QualityRow",
    "quality_experiment",
    "EfficiencyRow",
    "efficiency_experiment",
    "scalability_experiment",
    "breakdown_experiment",
    "static_snippet",
    "snippet_overlap_experiment",
    "pivot_table",
    "rows_to_table",
]
