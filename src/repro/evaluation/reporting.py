"""Plain-text report tables matching the paper's figure axes."""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Iterable, Sequence

from repro.util.text import format_table


def _as_dict(row: Any) -> dict[str, Any]:
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        return dataclasses.asdict(row)
    if isinstance(row, dict):
        return dict(row)
    raise TypeError(f"cannot tabulate row of type {type(row)!r}")


def rows_to_table(rows: Iterable[Any], columns: Sequence[str] | None = None) -> str:
    """Render dataclass/dict rows as an aligned text table."""
    dict_rows = [_as_dict(r) for r in rows]
    if not dict_rows:
        return "(no rows)"
    headers = list(columns) if columns else list(dict_rows[0])
    body = [[row.get(h, "") for h in headers] for row in dict_rows]
    return format_table(headers, body)


def pivot_table(
    rows: Iterable[Any],
    index: str,
    columns: str,
    value: str,
    float_format: str = "{:.1f}",
) -> str:
    """Pivot rows into a figure-like series table.

    Example — Figure 8(a) (index="l", columns="setting",
    value="effectiveness") renders::

        l   GA1-d1  GA1-d2  GA1-d3  GA2-d1
        5   60.0    73.3    59.1    41.2
        10  75.4    70.1    74.9    55.3
        ...
    """
    dict_rows = [_as_dict(r) for r in rows]
    if not dict_rows:
        return "(no rows)"
    col_keys: list[Any] = []
    row_keys: list[Any] = []
    cells: dict[tuple[Any, Any], Any] = {}
    for row in dict_rows:
        r_key, c_key = row[index], row[columns]
        if c_key not in col_keys:
            col_keys.append(c_key)
        if r_key not in row_keys:
            row_keys.append(r_key)
        cells[(r_key, c_key)] = row[value]

    headers = [index] + [str(c) for c in col_keys]
    body: list[list[Any]] = []
    for r_key in row_keys:
        line: list[Any] = [r_key]
        for c_key in col_keys:
            cell = cells.get((r_key, c_key), math.nan)
            line.append(cell)
        body.append(line)
    return format_table(headers, body, float_format=float_format)
