"""Effectiveness experiments — Figure 8 and the Section 6.1 in-text results.

Effectiveness is "the average percentage of the tuples that exist both in
the evaluators' size-l OSs and the computed size-l OS" — recall and
precision coincide because both summaries have size l.

The driver takes one complete OS per Data Subject, a set of G_A settings
(name → ImportanceStore), and a judge panel; for every (l, setting) it
computes the size-l OS under that setting's scores and averages the overlap
with each judge's gold summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.dp import optimal_size_l
from repro.core.os_tree import ObjectSummary, SizeLResult
from repro.evaluation.evaluators import SimulatedEvaluator, reweight
from repro.ranking.store import ImportanceStore

SizeLAlgorithm = Callable[[ObjectSummary, int], SizeLResult]


@dataclass(frozen=True)
class EffectivenessRow:
    """One point of a Figure-8 series."""

    setting: str
    l: int  # noqa: E741
    effectiveness: float  # percentage in [0, 100]
    n_observations: int


def _overlap(computed: set[int], gold: set[int], l: int) -> float:  # noqa: E741
    return 100.0 * len(computed & gold) / l


def effectiveness_experiment(
    os_trees: list[ObjectSummary],
    settings: dict[str, ImportanceStore],
    evaluators: list[SimulatedEvaluator],
    l_values: list[int],
    algorithm: SizeLAlgorithm = optimal_size_l,
) -> list[EffectivenessRow]:
    """Run the Figure-8 protocol.

    ``os_trees`` carry reference weights; for each setting the tree is
    re-weighted with that setting's scores before the size-l algorithm runs
    (the OS *structure* does not depend on the setting — only tuple scores
    do).  Judges' gold summaries are computed once per (tree, l) and reused
    across settings.
    """
    rows: list[EffectivenessRow] = []
    gold: dict[tuple[int, int, int], set[int]] = {}
    for tree_idx, tree in enumerate(os_trees):
        for l in l_values:  # noqa: E741
            for judge in evaluators:
                gold[(tree_idx, l, judge.evaluator_id)] = judge.gold_selection(tree, l)

    for setting_name, store in settings.items():
        for l in l_values:  # noqa: E741
            overlaps: list[float] = []
            for tree_idx, tree in enumerate(os_trees):
                weighted = reweight(
                    tree,
                    lambda node: store.importance(node.table, node.row_id)
                    * node.gds.affinity,
                )
                computed = algorithm(weighted, l).selected_uids
                for judge in evaluators:
                    overlaps.append(
                        _overlap(computed, gold[(tree_idx, l, judge.evaluator_id)], l)
                    )
            rows.append(
                EffectivenessRow(
                    setting=setting_name,
                    l=l,
                    effectiveness=sum(overlaps) / len(overlaps),
                    n_observations=len(overlaps),
                )
            )
    return rows


def greedy_effectiveness_impact(
    os_trees: list[ObjectSummary],
    store: ImportanceStore,
    evaluators: list[SimulatedEvaluator],
    l_values: list[int],
    algorithms: dict[str, SizeLAlgorithm],
) -> list[EffectivenessRow]:
    """Section 6.1 in-text: effectiveness impact of the greedy algorithms.

    The paper reports Update Top-Path-l matches the optimal's effectiveness
    on Author OSs while Bottom-Up loses 2-10%; this driver reproduces that
    comparison under one (default) setting for any set of algorithms.
    """
    rows: list[EffectivenessRow] = []
    for algo_name, algorithm in algorithms.items():
        rows.extend(
            EffectivenessRow(
                setting=algo_name,
                l=row.l,
                effectiveness=row.effectiveness,
                n_observations=row.n_observations,
            )
            for row in effectiveness_experiment(
                os_trees, {algo_name: store}, evaluators, l_values, algorithm
            )
        )
    return rows
