"""The Google-Desktop comparative baseline (Section 6.1).

The paper stored each OS as an HTML file, queried Google Desktop, and
inspected the returned snippet: "Google snippets contain a small amount of
words from the beginning of the file ... and the first few tuples (up to
three) from the OS (note that the order of nodes in an OS is random)".
The finding: static document snippets recover 0 (exceptionally 1) of the
tuples a human picked for the size-5 OS.

:func:`static_snippet` models exactly that behaviour: the t_DS header line
plus the first up-to-``k`` tuples of the OS under a seeded random node
order.  :func:`snippet_overlap_experiment` counts overlap with each judge's
gold size-5 summary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.os_tree import ObjectSummary
from repro.evaluation.evaluators import SimulatedEvaluator
from repro.util.rng import derive_rng


def static_snippet(os_tree: ObjectSummary, k: int = 3, seed: int = 0) -> set[int]:
    """Node uids a static document snippet would surface.

    The root (the file's header: "Search for Christos Faloutsos ...") is
    always shown; the body contributes the first ``k`` tuples of the OS in
    a seeded random serialisation order — document snippets know nothing
    about tuple importance or relational structure.
    """
    rng = derive_rng(seed, "snippet", os_tree.root.uid, os_tree.size)
    body = [node.uid for node in os_tree.nodes if node.uid != os_tree.root.uid]
    rng.shuffle(body)
    return {os_tree.root.uid} | set(body[:k])


@dataclass(frozen=True)
class SnippetOverlapRow:
    """Overlap of the static snippet with one judge's gold size-5 OS."""

    tree_index: int
    evaluator_id: int
    overlap_tuples: int


def snippet_overlap_experiment(
    os_trees: list[ObjectSummary],
    evaluators: list[SimulatedEvaluator],
    l: int = 5,  # noqa: E741
    k: int = 3,
    seed: int = 0,
) -> list[SnippetOverlapRow]:
    """Count snippet∩gold tuples per (OS, judge) — the paper's "less austere"
    comparison (the snippet holds only up to three tuples, so overlap is
    counted in tuples rather than as a percentage of l)."""
    rows: list[SnippetOverlapRow] = []
    for tree_idx, tree in enumerate(os_trees):
        snippet = static_snippet(tree, k=k, seed=seed)
        for judge in evaluators:
            gold = judge.gold_selection(tree, l)
            # The root is trivially shared (both always include t_DS); the
            # paper counts informative tuples, so exclude it.
            overlap = len((snippet & gold) - {tree.root.uid})
            rows.append(
                SnippetOverlapRow(
                    tree_index=tree_idx,
                    evaluator_id=judge.evaluator_id,
                    overlap_tuples=overlap,
                )
            )
    return rows
