"""Approximation-quality experiments — Figure 9.

For a set of OSs (the paper uses 10 random OSs per G_DS) and every l, each
greedy method's summary importance is divided by the optimal importance
(DP on the complete OS).  Methods run both on the complete OS and on the
prelim-l OS, giving the four series of each Figure-9 panel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.bottom_up import bottom_up_size_l
from repro.core.dp import optimal_size_l
from repro.core.os_tree import ObjectSummary, SizeLResult
from repro.core.top_path import top_path_size_l

SizeLAlgorithm = Callable[[ObjectSummary, int], SizeLResult]

DEFAULT_METHODS: dict[str, SizeLAlgorithm] = {
    "bottom_up": bottom_up_size_l,
    "top_path": top_path_size_l,
}


@dataclass(frozen=True)
class QualityRow:
    """One point of a Figure-9 series (quality as a percentage)."""

    method: str
    source: str  # "complete" | "prelim"
    l: int  # noqa: E741
    quality: float
    n_observations: int


def quality_experiment(
    pairs: list[tuple[ObjectSummary, ObjectSummary]],
    l_values: list[int],
    methods: dict[str, SizeLAlgorithm] | None = None,
) -> list[QualityRow]:
    """Run the Figure-9 protocol over (complete OS, prelim-l OS) pairs.

    ``pairs`` supplies, per Data Subject, the complete OS and a prelim OS
    (callers generate the prelim with the *largest* l in ``l_values`` so a
    single prelim serves every l; the paper regenerates per l — both are
    valid since prelim-l′ ⊇ top-l for l ≤ l′ under Definition 2's heap).
    The optimal reference is always DP on the *complete* OS.
    """
    methods = methods or DEFAULT_METHODS
    ratios: dict[tuple[str, str, int], list[float]] = {}
    for complete, prelim in pairs:
        for l in l_values:  # noqa: E741
            optimum = optimal_size_l(complete, l).importance
            for method_name, algorithm in methods.items():
                for source_name, tree in (("complete", complete), ("prelim", prelim)):
                    achieved = algorithm(tree, l).importance
                    ratio = 100.0 if optimum == 0 else 100.0 * achieved / optimum
                    ratios.setdefault((method_name, source_name, l), []).append(ratio)
    rows = [
        QualityRow(
            method=method_name,
            source=source_name,
            l=l,
            quality=sum(values) / len(values),
            n_observations=len(values),
        )
        for (method_name, source_name, l), values in ratios.items()
    ]
    rows.sort(key=lambda r: (r.method, r.source, r.l))
    return rows
