"""Simulated human evaluators for the effectiveness experiments.

The paper measured effectiveness with human judges: eleven DBLP authors
"sized-l" their own OSs, and eight professors sized 16 random TPC-H OSs
(Section 6.1).  Humans are not available offline, so each judge is simulated
as a *noisy oracle* (DESIGN.md §6):

* the judge's private importance for a tuple is the reference score (the
  default G_A1-d1 ranking) perturbed log-normally — judges broadly agree
  with authority flow but not exactly;
* for small l the judge over-weights 1st-level neighbours, reflecting the
  paper's own observation that "evaluators first selected important Paper
  tuples" and only added co-authors/years/conferences "in summaries of
  larger sizes (l ≥ 10)";
* the judge's gold summary is the *optimal* (DP) size-l OS under their
  private weights — judges are consistent with their own preferences.

Noise is keyed by (seed, evaluator, table, row), so a judge scores the same
tuple identically wherever it occurs — across OSs and across occurrences.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.dp import optimal_size_l
from repro.core.os_tree import ObjectSummary, OSNode
from repro.ranking.store import ImportanceStore


def reweight(os_tree: ObjectSummary, weight_fn: Callable[[OSNode], float]) -> ObjectSummary:
    """Clone *os_tree* with node weights replaced by ``weight_fn(node)``.

    Node uids are preserved, so selections on the clone map 1:1 onto the
    original tree.  Used both by the evaluators (private weights) and the
    effectiveness driver (weights under each G_A setting).
    """
    clone = os_tree.materialise_subset(
        {node.uid for node in os_tree.nodes}, kind=os_tree.kind
    )
    for node in clone.nodes:
        node.weight = weight_fn(node)
    return clone


@dataclass
class EvaluatorConfig:
    """Noise model knobs.

    ``noise_sigma`` is the log-normal disagreement between a judge and the
    reference ranking; ``depth1_bias`` is the small-l preference for
    1st-level neighbours (multiplier ``1 + depth1_bias / l`` at depth 1).
    """

    noise_sigma: float = 0.35
    depth1_bias: float = 2.5
    seed: int = 101


class SimulatedEvaluator:
    """One simulated judge."""

    def __init__(
        self,
        evaluator_id: int,
        reference: ImportanceStore,
        config: EvaluatorConfig | None = None,
    ) -> None:
        self.evaluator_id = evaluator_id
        self.reference = reference
        self.config = config or EvaluatorConfig()

    # ------------------------------------------------------------------ #
    # Private scores
    # ------------------------------------------------------------------ #
    def _noise_factor(self, table: str, row_id: int) -> float:
        """Deterministic log-normal factor keyed by (seed, judge, tuple)."""
        digest = hashlib.sha256(
            f"{self.config.seed}|{self.evaluator_id}|{table}|{row_id}".encode()
        ).digest()
        # Two uniform draws → one standard normal (Box-Muller).
        u1 = (int.from_bytes(digest[:8], "big") + 1) / (2**64 + 2)
        u2 = int.from_bytes(digest[8:16], "big") / 2**64
        normal = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
        return float(np.exp(self.config.noise_sigma * normal))

    def private_importance(self, table: str, row_id: int) -> float:
        """The judge's private global importance for one tuple."""
        return self.reference.importance(table, row_id) * self._noise_factor(
            table, row_id
        )

    def private_weight(self, node: OSNode, l: int) -> float:  # noqa: E741
        """Private local importance, including the small-l depth-1 bias."""
        weight = self.private_importance(node.table, node.row_id) * node.gds.affinity
        if node.depth == 1:
            weight *= 1.0 + self.config.depth1_bias / l
        return weight

    # ------------------------------------------------------------------ #
    # Gold summaries
    # ------------------------------------------------------------------ #
    def gold_selection(self, os_tree: ObjectSummary, l: int) -> set[int]:  # noqa: E741
        """The judge's own size-l OS (DP-optimal under private weights)."""
        personal = reweight(os_tree, lambda node: self.private_weight(node, l))
        return optimal_size_l(personal, l).selected_uids


def make_panel(
    n_evaluators: int,
    reference: ImportanceStore,
    config: EvaluatorConfig | None = None,
) -> list[SimulatedEvaluator]:
    """A panel of judges (11 for DBLP, 8 for TPC-H in the paper)."""
    return [
        SimulatedEvaluator(evaluator_id, reference, config)
        for evaluator_id in range(n_evaluators)
    ]
