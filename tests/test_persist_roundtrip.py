"""Round-trip property test: snapshot-loaded FlatOS == freshly generated.

For randomly drawn subjects and l-values, a complete OS loaded from the
snapshot arena must be node-for-node identical to one generated fresh
from the data graph, and every size-l algorithm must make the *same*
selection on both representations — the guarantee that lets the disk
tier stay outside the cache key (serving from disk is indistinguishable
from generating).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.bottom_up import bottom_up_size_l
from repro.core.dp import optimal_size_l
from repro.core.os_tree import FlatOS
from repro.core.top_path import top_path_size_l

ALGORITHMS = {
    "dp": optimal_size_l,
    "bottom_up": bottom_up_size_l,
    "top_path": top_path_size_l,
}

#: Deterministic "random" draws: the property holds for any subject and
#: any l; the seeds keep the suite's runtime and failures reproducible.
N_SUBJECTS = 8
N_L_VALUES = 4


def _draw_cases(dblp_engine):
    rng = random.Random(1234)
    tables = sorted(dblp_engine.gds_by_root)
    cases = []
    for _ in range(N_SUBJECTS):
        table = rng.choice(tables)
        row_id = rng.randrange(len(dblp_engine.db.table(table)))
        l_values = [rng.randint(1, 40) for _ in range(N_L_VALUES)]
        cases.append((table, row_id, l_values))
    return cases


@pytest.fixture(scope="module")
def author_and_paper_snapshot(dblp_engine, tmp_path_factory):
    """A snapshot covering the drawn subjects of both R_DS tables."""
    from repro.persist import Snapshot, precompute_snapshot

    subjects = sorted(
        {(table, row) for table, row, _ls in _draw_cases(dblp_engine)}
    )
    path = tmp_path_factory.mktemp("roundtrip") / "snap"
    precompute_snapshot(dblp_engine, subjects, path, workers=2)
    return Snapshot.open(path)


class TestSnapshotRoundTrip:
    def test_loaded_tree_is_node_for_node_identical(
        self, dblp_engine, author_and_paper_snapshot
    ) -> None:
        for table, row_id, _l_values in _draw_cases(dblp_engine):
            fresh = dblp_engine.complete_os_flat(table, row_id)
            loaded = author_and_paper_snapshot.load_flat(
                table, row_id, dblp_engine.gds_for(table), dblp_engine.db
            )
            assert loaded is not None
            assert loaded.size == fresh.size
            for field in FlatOS.ARENA_FIELDS:
                assert np.array_equal(
                    getattr(loaded, field), getattr(fresh, field)
                ), f"{table}#{row_id} field {field} diverged"

    def test_size_l_selections_identical_across_algorithms(
        self, dblp_engine, author_and_paper_snapshot
    ) -> None:
        for table, row_id, l_values in _draw_cases(dblp_engine):
            fresh = dblp_engine.complete_os_flat(table, row_id)
            loaded = author_and_paper_snapshot.load_flat(
                table, row_id, dblp_engine.gds_for(table), dblp_engine.db
            )
            for l in l_values:  # noqa: E741
                for name, algorithm in ALGORITHMS.items():
                    from_fresh = algorithm(fresh, l)
                    from_disk = algorithm(loaded, l)
                    assert from_fresh.selected_uids == from_disk.selected_uids, (
                        f"{name} diverged on {table}#{row_id} at l={l}"
                    )
                    assert from_fresh.importance == pytest.approx(
                        from_disk.importance
                    )
