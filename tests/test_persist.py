"""Tests for the persistence tier: snapshot format, fingerprinting,
precompute pipeline, builder/session wiring, and the cache disk tier."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.builder import EngineBuilder
from repro.core.cache import SummaryCache
from repro.core.options import QueryOptions, Source
from repro.core.os_tree import FlatOS
from repro.datasets.dblp import small_dblp
from repro.errors import (
    PersistError,
    SnapshotFormatError,
    SnapshotMismatchError,
    SummaryError,
)
from repro.persist import (
    FORMAT_VERSION,
    Snapshot,
    engine_fingerprint,
    precompute_snapshot,
    select_subjects,
    store_digest,
    write_snapshot,
)
from repro.ranking.store import ImportanceStore
from repro.search.inverted_index import ArrayInvertedIndex, InvertedIndex
from repro.session import Session

COMPLETE = QueryOptions(source=Source.COMPLETE)


# --------------------------------------------------------------------- #
# Arena pack/unpack
# --------------------------------------------------------------------- #
class TestFlatArena:
    def test_pack_then_slice_is_identical(self, dblp_engine) -> None:
        trees = [dblp_engine.complete_os_flat("author", row) for row in (0, 3, 7)]
        arena = FlatOS.pack_arena(trees)
        assert arena["indptr"].tolist() == [
            0,
            trees[0].size,
            trees[0].size + trees[1].size,
            sum(t.size for t in trees),
        ]
        for i, tree in enumerate(trees):
            loaded = FlatOS.from_arena(
                arena, i, tree.gds, db=dblp_engine.db
            )
            for field in FlatOS.ARENA_FIELDS:
                assert np.array_equal(
                    getattr(loaded, field), getattr(tree, field)
                ), field

    def test_slices_are_views_not_copies(self, dblp_engine) -> None:
        trees = [dblp_engine.complete_os_flat("author", row) for row in (0, 1)]
        arena = FlatOS.pack_arena(trees)
        loaded = FlatOS.from_arena(arena, 1, trees[1].gds)
        assert loaded.weight.base is arena["weight"]

    def test_out_of_range_index_raises(self, dblp_engine) -> None:
        tree = dblp_engine.complete_os_flat("author", 0)
        arena = FlatOS.pack_arena([tree])
        with pytest.raises(SummaryError, match="arena tree index"):
            FlatOS.from_arena(arena, 1, tree.gds)

    def test_empty_arena(self) -> None:
        arena = FlatOS.pack_arena([])
        assert arena["indptr"].tolist() == [0]
        assert arena["parent"].size == 0


# --------------------------------------------------------------------- #
# Fingerprinting
# --------------------------------------------------------------------- #
class TestFingerprint:
    def test_deterministic_across_rebuilds(self, dblp_engine) -> None:
        data = small_dblp(seed=7)  # regenerate the same dataset
        from repro.ranking.objectrank import compute_objectrank
        from repro.core.engine import SizeLEngine

        twin = SizeLEngine(
            data.db,
            {"author": data.author_gds(), "paper": data.paper_gds()},
            compute_objectrank(data.db, data.ga1()),
        )
        assert engine_fingerprint(
            twin.db, twin.gds_by_root, twin.theta
        ) == engine_fingerprint(
            dblp_engine.db, dblp_engine.gds_by_root, dblp_engine.theta
        )
        assert store_digest(twin.store) == store_digest(dblp_engine.store)

    def test_data_change_changes_fingerprint(self, dblp_engine) -> None:
        before = engine_fingerprint(
            dblp_engine.db, dblp_engine.gds_by_root, dblp_engine.theta
        )
        other = small_dblp(seed=8)
        from repro.core.engine import SizeLEngine

        twin = SizeLEngine(
            other.db,
            {"author": other.author_gds(), "paper": other.paper_gds()},
            ImportanceStore.uniform(other.db),
        )
        after = engine_fingerprint(twin.db, twin.gds_by_root, twin.theta)
        assert before != after

    def test_theta_changes_fingerprint(self, dblp_engine) -> None:
        assert engine_fingerprint(
            dblp_engine.db, dblp_engine.gds_by_root, 0.7
        ) != engine_fingerprint(dblp_engine.db, dblp_engine.gds_by_root, 0.8)

    def test_store_digest_tracks_values(self, dblp_engine) -> None:
        assert store_digest(dblp_engine.store) != store_digest(
            dblp_engine.store.scaled(2.0)
        )


# --------------------------------------------------------------------- #
# Snapshot format
# --------------------------------------------------------------------- #
class TestSnapshotFormat:
    def test_manifest_contents(self, dblp_snapshot, dblp_engine) -> None:
        manifest = dblp_snapshot.manifest
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["fingerprint"] == engine_fingerprint(
            dblp_engine.db, dblp_engine.gds_by_root, dblp_engine.theta
        )
        assert manifest["store_digest"] == store_digest(dblp_engine.store)
        assert manifest["l_values"] is None  # complete OSs: valid for all l
        assert len(manifest["subjects"]) == len(dblp_engine.db.table("author"))
        assert manifest["checksums"]  # one per arena file

    def test_atomic_write_leaves_no_temp_dirs(
        self, dblp_engine, tmp_path
    ) -> None:
        path = tmp_path / "snap"
        tree = dblp_engine.complete_os_flat("author", 0)
        write_snapshot(path, dblp_engine, [("author", 0)], [tree])
        assert path.is_dir()
        assert list(tmp_path.iterdir()) == [path]

    def test_overwrite_required_to_replace(self, dblp_engine, tmp_path) -> None:
        path = tmp_path / "snap"
        tree = dblp_engine.complete_os_flat("author", 0)
        write_snapshot(path, dblp_engine, [("author", 0)], [tree])
        with pytest.raises(SnapshotFormatError, match="already exists"):
            write_snapshot(path, dblp_engine, [("author", 0)], [tree])
        write_snapshot(
            path, dblp_engine, [("author", 1)],
            [dblp_engine.complete_os_flat("author", 1)], overwrite=True,
        )
        assert ("author", 1) in Snapshot.open(path)

    def test_not_a_snapshot_dir(self, tmp_path) -> None:
        with pytest.raises(SnapshotFormatError, match="no manifest.json"):
            Snapshot.open(tmp_path)

    def test_corrupt_manifest_rejected(self, dblp_engine, tmp_path) -> None:
        path = tmp_path / "snap"
        write_snapshot(
            path, dblp_engine, [("author", 0)],
            [dblp_engine.complete_os_flat("author", 0)],
        )
        (path / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(SnapshotFormatError, match="corrupt snapshot manifest"):
            Snapshot.open(path)

    def test_corrupt_arena_rejected_by_checksum(
        self, dblp_engine, tmp_path
    ) -> None:
        path = tmp_path / "snap"
        write_snapshot(
            path, dblp_engine, [("author", 0)],
            [dblp_engine.complete_os_flat("author", 0)],
        )
        target = path / "trees_weight.npy"
        blob = bytearray(target.read_bytes())
        blob[-1] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(SnapshotFormatError, match="checksum mismatch"):
            Snapshot.open(path)
        # verification can be skipped explicitly (trusted storage)
        assert Snapshot.open(path, verify=False).subjects

    def test_missing_arena_file_rejected(self, dblp_engine, tmp_path) -> None:
        path = tmp_path / "snap"
        write_snapshot(
            path, dblp_engine, [("author", 0)],
            [dblp_engine.complete_os_flat("author", 0)],
        )
        (path / "trees_parent.npy").unlink()
        with pytest.raises(SnapshotFormatError, match="missing arena file"):
            Snapshot.open(path)

    def test_future_format_version_rejected(
        self, dblp_engine, tmp_path
    ) -> None:
        path = tmp_path / "snap"
        write_snapshot(
            path, dblp_engine, [("author", 0)],
            [dblp_engine.complete_os_flat("author", 0)],
        )
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotFormatError, match="unsupported snapshot format"):
            Snapshot.open(path)

    def test_tampered_manifest_subjects_rejected(
        self, dblp_engine, tmp_path
    ) -> None:
        """The manifest is self-checksummed: a flipped subject row id must
        be caught at open, never silently serve another subject's tree."""
        path = tmp_path / "snap"
        write_snapshot(
            path, dblp_engine, [("author", 0), ("author", 1)],
            [dblp_engine.complete_os_flat("author", r) for r in (0, 1)],
        )
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["subjects"][0] = ["author", 7]
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotFormatError, match="self-checksum"):
            Snapshot.open(path)
        with pytest.raises(SnapshotFormatError, match="self-checksum"):
            Snapshot.open(path, verify=False)  # always checked: it is cheap

    def test_restricted_l_values_snapshot_not_served(
        self, dblp_engine, tmp_path
    ) -> None:
        """A (future-format) snapshot claiming restricted l-values must not
        be over-served by the disk tier, which hands trees to every l."""
        from repro.persist.snapshot import _manifest_checksum

        path = tmp_path / "snap"
        write_snapshot(
            path, dblp_engine, [("author", 0)],
            [dblp_engine.complete_os_flat("author", 0)],
        )
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["l_values"] = [5]
        manifest["manifest_checksum"] = _manifest_checksum(manifest)
        (path / "manifest.json").write_text(json.dumps(manifest))
        cache = SummaryCache(
            dblp_engine, snapshot=Snapshot.open(path, verify=False)
        )
        cache.complete_os_flat("author", 0)
        stats = cache.stats()
        assert stats["disk_hits"] == 0
        assert stats["disk_misses"] == 1
        assert stats["tree_generations"] == 1


# --------------------------------------------------------------------- #
# Snapshot-served structures
# --------------------------------------------------------------------- #
class TestSnapshotStructures:
    def test_data_graph_round_trips(self, dblp_snapshot, dblp_engine) -> None:
        fresh = dblp_engine.data_graph
        loaded = dblp_snapshot.data_graph()
        for fresh_adj, loaded_adj in zip(
            fresh.adjacencies(), loaded.adjacencies()
        ):
            assert (fresh_adj.owner, fresh_adj.column) == (
                loaded_adj.owner, loaded_adj.column,
            )
            assert np.array_equal(fresh_adj.forward, loaded_adj.forward)
            assert np.array_equal(
                fresh_adj.backward_indptr, loaded_adj.backward_indptr
            )
            assert np.array_equal(
                fresh_adj.backward_indices, loaded_adj.backward_indices
            )

    def test_array_index_matches_in_memory_index(
        self, dblp_snapshot, dblp_engine
    ) -> None:
        fresh: InvertedIndex = dblp_engine.searcher.index
        loaded = dblp_snapshot.search_index(dblp_engine.db)
        assert isinstance(loaded, ArrayInvertedIndex)
        assert loaded.vocabulary_size == fresh.vocabulary_size
        for token in ("faloutsos", "christos", "ZZZ-absent", "the"):
            assert loaded.lookup(token) == fresh.lookup(token)
        assert loaded.conjunctive(["Christos Faloutsos"]) == fresh.conjunctive(
            ["Christos Faloutsos"]
        )

    def test_store_round_trips(self, dblp_snapshot, dblp_engine) -> None:
        loaded = dblp_snapshot.store()
        for table in dblp_engine.store.tables():
            assert np.array_equal(
                loaded.array(table), dblp_engine.store.array(table)
            )

    def test_load_flat_absent_subject_is_none(self, dblp_snapshot, dblp_engine) -> None:
        gds = dblp_engine.gds_for("paper")
        assert dblp_snapshot.load_flat("paper", 0, gds) is None


# --------------------------------------------------------------------- #
# Mismatch rejection
# --------------------------------------------------------------------- #
class TestMismatchRejection:
    def test_different_dataset_rejected(self, dblp_snapshot) -> None:
        other = small_dblp(seed=9)
        builder = (
            EngineBuilder.from_dataset(other).with_snapshot(dblp_snapshot)
        )
        with pytest.raises(SnapshotMismatchError, match="fingerprint"):
            builder.build()

    def test_cross_dataset_snapshot_fails_with_mismatch_not_ranking_error(
        self, dblp_snapshot, tpch
    ) -> None:
        """A DBLP snapshot attached to a TPC-H build must raise the clear
        mismatch error BEFORE the snapshot's store/index are used to
        construct anything (which would fail with a confusing
        RankingError about missing tables instead)."""
        builder = EngineBuilder.from_dataset(tpch).with_snapshot(dblp_snapshot)
        with pytest.raises(SnapshotMismatchError, match="fingerprint"):
            builder.build()

    def test_different_store_rejected(self, dblp_snapshot, dblp) -> None:
        builder = EngineBuilder.from_dataset(
            dblp, store=ImportanceStore.uniform(dblp.db)
        ).with_snapshot(dblp_snapshot)
        with pytest.raises(SnapshotMismatchError, match="importance store"):
            builder.build()

    def test_snapshot_store_skips_digest_check(self, dblp_snapshot, dblp) -> None:
        # no explicit store: the builder loads it from the snapshot, which
        # is consistent by construction
        session = EngineBuilder.from_dataset(dblp).with_snapshot(
            dblp_snapshot
        ).build_session()
        assert session.cache.snapshot is dblp_snapshot

    def test_attach_to_cache_validates(self, dblp_snapshot) -> None:
        other = small_dblp(seed=9)
        engine = EngineBuilder.from_dataset(
            other, store=ImportanceStore.uniform(other.db)
        ).build()
        with pytest.raises(SnapshotMismatchError):
            SummaryCache(engine, snapshot=dblp_snapshot)

    def test_revalidation_notices_rows_inserted_after_first_attach(
        self, tmp_path
    ) -> None:
        """Validation must not be memoised per engine: inserting rows after
        a successful attach invalidates the snapshot, and a later attach of
        the same Snapshot object must reject it."""
        data = small_dblp(seed=11)
        engine = EngineBuilder.from_dataset(
            data, store=ImportanceStore.uniform(data.db)
        ).build()
        write_snapshot(
            tmp_path / "snap", engine, [("author", 0)],
            [engine.complete_os_flat("author", 0)],
        )
        snapshot = Snapshot.open(tmp_path / "snap")
        SummaryCache(engine, snapshot=snapshot)  # validates cleanly
        n = len(data.db.table("author"))
        data.db.insert("author", {"author_id": 10_000 + n, "name": "New Arrival"})
        with pytest.raises(SnapshotMismatchError, match="fingerprint"):
            SummaryCache(engine, snapshot=snapshot)


# --------------------------------------------------------------------- #
# Subject selection
# --------------------------------------------------------------------- #
class TestSelectSubjects:
    def test_by_table(self, dblp_engine) -> None:
        subjects = select_subjects(dblp_engine, table="author")
        assert subjects == [
            ("author", row) for row in range(len(dblp_engine.db.table("author")))
        ]

    def test_by_ids(self, dblp_engine) -> None:
        assert select_subjects(
            dblp_engine, table="author", row_ids=[3, 1]
        ) == [("author", 3), ("author", 1)]

    def test_by_ids_deduplicates_preserving_order(self, dblp_engine) -> None:
        assert select_subjects(
            dblp_engine, table="author", row_ids=[3, 1, 3, 1, 2]
        ) == [("author", 3), ("author", 1), ("author", 2)]

    def test_snapshot_built_engine_cannot_precompute(
        self, dblp, dblp_snapshot, tmp_path, monkeypatch
    ) -> None:
        """An engine serving its index from a snapshot fails fast — before
        any generation — when asked to precompute."""
        engine = EngineBuilder.from_dataset(dblp).with_snapshot(
            dblp_snapshot
        ).build()

        def exploding(*args, **kwargs):
            raise AssertionError("generated a tree before the index check")

        monkeypatch.setattr(engine, "complete_os_flat", exploding)
        with pytest.raises(SnapshotFormatError, match="no to_arrays"):
            precompute_snapshot(engine, [("author", 0)], tmp_path / "s")

    def test_ids_require_table(self, dblp_engine) -> None:
        with pytest.raises(PersistError, match="requires table"):
            select_subjects(dblp_engine, row_ids=[1])

    def test_ids_out_of_range(self, dblp_engine) -> None:
        with pytest.raises(PersistError, match="out of range"):
            select_subjects(dblp_engine, table="author", row_ids=[10_000])

    def test_non_rds_table_rejected(self, dblp_engine) -> None:
        with pytest.raises(SummaryError, match="no G_DS registered"):
            select_subjects(dblp_engine, table="writes")

    def test_top_keywords(self, dblp_engine) -> None:
        subjects = select_subjects(dblp_engine, top_keywords=5)
        assert len(subjects) == 5
        assert len(set(subjects)) == 5
        for table, row_id in subjects:
            assert table in dblp_engine.gds_by_root
        # deterministic: same call, same order
        assert subjects == select_subjects(dblp_engine, top_keywords=5)

    def test_selector_conflicts(self, dblp_engine) -> None:
        with pytest.raises(PersistError, match="mutually exclusive"):
            select_subjects(dblp_engine, table="author", top_keywords=3)
        with pytest.raises(PersistError, match="pick a subject selector"):
            select_subjects(dblp_engine)


# --------------------------------------------------------------------- #
# Precompute pipeline
# --------------------------------------------------------------------- #
class TestPrecompute:
    def test_parallel_equals_serial(self, dblp_engine, tmp_path) -> None:
        subjects = [("author", row) for row in range(6)]
        serial = precompute_snapshot(
            dblp_engine, subjects, tmp_path / "serial", workers=1
        )
        parallel = precompute_snapshot(
            dblp_engine, subjects, tmp_path / "parallel", workers=4
        )
        assert serial.subjects == parallel.subjects == 6
        a = Snapshot.open(tmp_path / "serial")
        b = Snapshot.open(tmp_path / "parallel")
        assert a.manifest["tree_nodes"] == b.manifest["tree_nodes"]
        gds = dblp_engine.gds_for("author")
        for table, row in subjects:
            ta = a.load_flat(table, row, gds)
            tb = b.load_flat(table, row, gds)
            for field in FlatOS.ARENA_FIELDS:
                assert np.array_equal(getattr(ta, field), getattr(tb, field))

    def test_empty_subjects_rejected(self, dblp_engine, tmp_path) -> None:
        with pytest.raises(PersistError, match="no subjects"):
            precompute_snapshot(dblp_engine, [], tmp_path / "snap")

    def test_existing_out_fails_before_any_generation(
        self, dblp_engine, tmp_path, monkeypatch
    ) -> None:
        """A forgotten overwrite= must fail up front, not after paying for
        the whole offline generation run."""
        target = tmp_path / "snap"
        target.mkdir()

        def exploding(*args, **kwargs):  # any generation means we paid
            raise AssertionError("generated a tree before the exists check")

        monkeypatch.setattr(dblp_engine, "complete_os_flat", exploding)
        with pytest.raises(SnapshotFormatError, match="already exists"):
            precompute_snapshot(dblp_engine, [("author", 0)], target)

    def test_bad_workers_rejected(self, dblp_engine, tmp_path) -> None:
        with pytest.raises(SummaryError, match="workers must be"):
            precompute_snapshot(
                dblp_engine, [("author", 0)], tmp_path / "snap", workers=0
            )


# --------------------------------------------------------------------- #
# Serving integration (cache disk tier + Session)
# --------------------------------------------------------------------- #
class TestDiskTierServing:
    def test_memory_miss_served_from_disk_without_generation(
        self, dblp_engine, dblp_snapshot
    ) -> None:
        cache = SummaryCache(dblp_engine, snapshot=dblp_snapshot)
        result = cache.run("author", 2, COMPLETE.normalized())
        stats = cache.stats()
        assert stats["disk_hits"] == 1
        assert stats["tree_generations"] == 0
        fresh = dblp_engine.run("author", 2, COMPLETE.normalized())
        assert result.selected_uids == fresh.selected_uids
        assert result.importance == pytest.approx(fresh.importance)

    def test_snapshot_false_option_bypasses_disk(
        self, dblp_engine, dblp_snapshot
    ) -> None:
        cache = SummaryCache(dblp_engine, snapshot=dblp_snapshot)
        options = COMPLETE.replace(snapshot=False).normalized()
        cache.run("author", 2, options)
        stats = cache.stats()
        assert stats["disk_hits"] == 0
        assert stats["tree_generations"] == 1

    def test_absent_subject_counts_disk_miss(
        self, dblp_engine, dblp_snapshot
    ) -> None:
        cache = SummaryCache(dblp_engine, snapshot=dblp_snapshot)
        cache.complete_os_flat("paper", 0)  # only authors were snapshotted
        stats = cache.stats()
        assert stats["disk_misses"] == 1
        assert stats["tree_generations"] == 1

    def test_invalidate_masks_disk_entry(
        self, dblp_engine, dblp_snapshot
    ) -> None:
        cache = SummaryCache(dblp_engine, snapshot=dblp_snapshot)
        cache.complete_os_flat("author", 1)
        assert cache.stats()["disk_hits"] == 1
        cache.invalidate("author", 1)
        cache.complete_os_flat("author", 1)
        stats = cache.stats()
        assert stats["snapshot_stale"] == 1
        assert stats["tree_generations"] == 1  # regenerated, not re-served
        # unaffected subjects still serve from disk
        cache.complete_os_flat("author", 2)
        assert cache.stats()["disk_hits"] == 2

    def test_bare_invalidate_masks_whole_disk_tier_until_reattach(
        self, dblp_engine, dblp_snapshot
    ) -> None:
        """invalidate() with no arguments disables the entire disk tier —
        every snapshot tree predates the refresh — and attach_snapshot
        (which re-validates) is the way to re-enable it."""
        cache = SummaryCache(dblp_engine, snapshot=dblp_snapshot)
        cache.complete_os_flat("author", 1)
        assert cache.stats()["disk_hits"] == 1
        cache.invalidate()
        cache.complete_os_flat("author", 1)
        cache.complete_os_flat("author", 2)
        stats = cache.stats()
        assert stats["disk_hits"] == 1  # nothing more served from disk
        assert stats["tree_generations"] == 2
        assert stats["snapshot_stale"] == 2
        cache.attach_snapshot(dblp_snapshot)  # revalidates; clears the masks
        cache.complete_os_flat("author", 3)  # was masked before the re-attach
        assert cache.stats()["disk_hits"] == 2

    def test_session_snapshot_path_round_trip(
        self, dblp, dblp_snapshot
    ) -> None:
        session = Session.from_dataset(dblp, snapshot=dblp_snapshot.path)
        result = session.size_l("author", 1, 8, options=COMPLETE.replace(l=8))
        assert result.size == 8
        stats = session.cache_stats()
        assert stats["disk_hits"] == 1
        assert stats["tree_generations"] == 0
        assert session.describe()["snapshot"]["subjects"] == len(dblp_snapshot)

    def test_keyword_query_over_snapshot_index(
        self, dblp, dblp_snapshot
    ) -> None:
        warm = Session.from_dataset(dblp, snapshot=dblp_snapshot)
        cold = Session.from_dataset(dblp)
        options = COMPLETE.replace(l=6)
        warm_results = warm.keyword_query("Faloutsos", options=options)
        cold_results = cold.keyword_query("Faloutsos", options=options)
        assert [e.match.row_id for e in warm_results] == [
            e.match.row_id for e in cold_results
        ]
        assert [e.result.selected_uids for e in warm_results] == [
            e.result.selected_uids for e in cold_results
        ]
        assert warm.cache_stats()["disk_hits"] == len(warm_results)
