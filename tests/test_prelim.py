"""Tests for prelim-l OS generation (Algorithm 4) — Definition 2, Lemma 3."""

from __future__ import annotations

import pytest

from repro.core.dp import optimal_size_l
from repro.core.os_tree import ObjectSummary


def _top_l_local_importances(tree: ObjectSummary, l: int) -> list[float]:  # noqa: E741
    return sorted((node.weight for node in tree.nodes), reverse=True)[:l]


class TestDefinition2:
    """The prelim-l OS must contain the top-l set of the complete OS."""

    @pytest.mark.parametrize("l", [1, 5, 10, 25])
    @pytest.mark.parametrize("row_id", [0, 1, 2])
    def test_prelim_contains_top_l_weights_dblp(self, dblp_engine, l, row_id) -> None:
        complete = dblp_engine.complete_os("author", row_id)
        prelim, stats = dblp_engine.prelim_os("author", row_id, l)
        expected = _top_l_local_importances(complete, min(l, complete.size))
        got = sorted((node.weight for node in prelim.nodes), reverse=True)[: len(expected)]
        assert got == pytest.approx(expected)

    @pytest.mark.parametrize("l", [5, 15])
    def test_prelim_contains_top_l_weights_tpch(self, tpch_engine, l) -> None:
        complete = tpch_engine.complete_os("customer", 1)
        prelim, _stats = tpch_engine.prelim_os("customer", 1, l)
        expected = _top_l_local_importances(complete, min(l, complete.size))
        got = sorted((node.weight for node in prelim.nodes), reverse=True)[: len(expected)]
        assert got == pytest.approx(expected)

    def test_prelim_is_subset_of_complete(self, dblp_engine) -> None:
        complete = dblp_engine.complete_os("author", 0)
        prelim, _stats = dblp_engine.prelim_os("author", 0, 10)
        complete_keys = {
            (n.gds.label, n.row_id, n.parent.row_id if n.parent else -1)
            for n in complete.nodes
        }
        prelim_keys = {
            (n.gds.label, n.row_id, n.parent.row_id if n.parent else -1)
            for n in prelim.nodes
        }
        assert prelim_keys <= complete_keys
        assert prelim.size <= complete.size

    def test_prelim_smaller_than_complete(self, dblp_engine) -> None:
        complete = dblp_engine.complete_os("author", 0)
        prelim, _stats = dblp_engine.prelim_os("author", 0, 5)
        # On a skewed OS the prelim should prune aggressively (the paper
        # reports prelim-5 at ~10% of the complete OS).
        assert prelim.size < complete.size * 0.7

    def test_avoidance_counters(self, dblp_engine) -> None:
        _prelim, stats = dblp_engine.prelim_os("author", 0, 5)
        assert stats.avoided_subtrees > 0
        assert stats.limited_extractions > 0
        assert stats.extracted_tuples >= 5
        assert len(stats.top_l_uids) == 5

    def test_backend_equivalence_for_prelim(self, dblp_engine) -> None:
        via_graph, _ = dblp_engine.prelim_os("author", 1, 8, backend="datagraph")
        via_db, _ = dblp_engine.prelim_os("author", 1, 8, backend="database")
        sig = lambda t: sorted(  # noqa: E731
            (n.gds.label, n.row_id, n.parent.row_id if n.parent else -1)
            for n in t.nodes
        )
        assert sig(via_graph) == sig(via_db)


class TestLemma3:
    """Under monotone local importances the prelim-l OS contains the
    optimal size-l OS.

    With *uniform* global importance, local importance reduces to the G_DS
    affinity, which Equation 1 makes monotonically decreasing along every
    root-to-leaf path — so every OS satisfies Lemma 3's precondition."""

    @pytest.fixture(scope="class")
    def uniform_engine(self, dblp):
        from repro.core.engine import SizeLEngine
        from repro.ranking.store import ImportanceStore

        return SizeLEngine(
            dblp.db,
            {"author": dblp.author_gds(), "paper": dblp.paper_gds()},
            ImportanceStore.uniform(dblp.db),
        )

    @pytest.mark.parametrize("l", [3, 8, 15])
    @pytest.mark.parametrize("rds", ["author", "paper"])
    def test_prelim_preserves_optimum_when_monotone(self, uniform_engine, rds, l) -> None:
        for row_id in range(3):
            complete = uniform_engine.complete_os(rds, row_id)
            assert all(
                node.parent is None or node.weight <= node.parent.weight + 1e-12
                for node in complete.nodes
            ), "uniform scores must make OSs monotone (Eq. 1)"
            prelim, _stats = uniform_engine.prelim_os(rds, row_id, l)
            dp_complete = optimal_size_l(complete, l)
            dp_prelim = optimal_size_l(prelim, l)
            assert dp_prelim.importance == pytest.approx(dp_complete.importance)

    @pytest.mark.parametrize("l", [3, 10])
    def test_lemma_2_bottom_up_optimal_on_monotone_os(self, uniform_engine, l) -> None:
        from repro.core.bottom_up import bottom_up_size_l

        complete = uniform_engine.complete_os("author", 0)
        bu = bottom_up_size_l(complete, l)
        dp = optimal_size_l(complete, l)
        assert bu.importance == pytest.approx(dp.importance)


class TestPrelimQualityImpact:
    def test_prelim_quality_loss_is_small(self, dblp_engine) -> None:
        """Section 6.2: prelim-l OSs have 'very low approximation quality
        loss' — at most a few percent."""
        losses = []
        for row_id in range(3):
            complete = dblp_engine.complete_os("author", row_id)
            for l in (5, 10, 20):  # noqa: E741
                prelim, _stats = dblp_engine.prelim_os("author", row_id, l)
                best_complete = optimal_size_l(complete, l).importance
                best_prelim = optimal_size_l(prelim, l).importance
                if best_complete > 0:
                    losses.append(best_prelim / best_complete)
        assert min(losses) > 0.85
        assert sum(losses) / len(losses) > 0.95
