"""The chaos suite: seeded fault schedules against the live cluster.

The cardinal invariant under test: **no fault schedule may change an
answer**.  Every 200 response produced while faults are armed must be
byte-identical (modulo timing fields) to the fault-free single-process
reference; failures must be one of the pinned retryable shapes (503
``ShardUnavailableError``/``BackendIOError``, 504
``DeadlineExceededError``) or an explicitly marked degraded response.

Transport faults are installed **in this process**, so they hit the
router's client side of every frame — the workers themselves stay
healthy, which is exactly the "flaky network, correct backends" half of
the chaos vocabulary.  Worker-process faults ride :data:`FAULT_PLAN_ENV`.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cluster import Cluster, ClusterRouter, DatasetSpec
from repro.errors import (
    DeadlineExceededError,
    ShardUnavailableError,
    WorkerStartupError,
)
from repro.reliability import FAULT_PLAN_ENV, FaultPlan, FaultRule, install, uninstall
from repro.service.deployment import Deployment
from repro.service.dispatch import ServiceDispatcher
from repro.service.http import DEADLINE_HEADER, ServiceHTTPServer
from repro.service.protocol import encode_error

SEED, SCALE = 7, 0.5
KEYWORDS = ["Faloutsos"]
OPTIONS = {"l": 8}

_STABLE = (
    "rank",
    "table",
    "row_id",
    "match_importance",
    "importance",
    "l",
    "algorithm",
    "selected_uids",
    "rendered",
)


def stable(entry: dict) -> dict:
    return {key: entry[key] for key in _STABLE}


@pytest.fixture(autouse=True)
def disarm_faults():
    """No test may leak an armed plan into the next (or other files)."""
    yield
    uninstall()


@pytest.fixture(scope="module")
def reference():
    deployment = Deployment().add(
        "dblp", named="dblp", seed=SEED, scale=SCALE, cache_size=64
    )
    yield ServiceDispatcher(deployment)
    deployment.close()


@pytest.fixture(scope="module")
def cluster():
    spec = DatasetSpec(name="dblp", database="dblp", seed=SEED, scale=SCALE)
    with Cluster([spec], shards=3, cache_size=16, startup_timeout=180) as running:
        yield running


def wait_all_ready(cluster: Cluster, timeout: float = 120.0) -> None:
    deadline = time.monotonic() + timeout
    while cluster.supervisor.ready_count() < cluster.shards:
        assert time.monotonic() < deadline, "cluster did not recover in time"
        time.sleep(0.05)


def wait_shard_down(cluster: Cluster, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while cluster.supervisor.ready_count() == cluster.shards:
        assert time.monotonic() < deadline, "supervisor never noticed the kill"
        time.sleep(0.02)


# --------------------------------------------------------------------- #
# Seeded transport-fault sweep: wrong answers never
# --------------------------------------------------------------------- #
class TestSeededChaosSweep:
    @pytest.mark.parametrize("seed,rate", [(11, 0.05), (23, 0.15)])
    def test_faulty_transport_never_changes_an_answer(
        self, cluster, reference, seed, rate
    ) -> None:
        query = {"dataset": "dblp", "keywords": KEYWORDS, "options": OPTIONS}
        _, truth = reference.dispatch_safe("/v1/query", query)
        truth_stable = [stable(e) for e in truth["results"]]
        subjects = [[e["table"], e["row_id"]] for e in truth["results"]]
        batch = {"dataset": "dblp", "subjects": subjects, "options": OPTIONS}
        _, batch_truth = reference.dispatch_safe("/v1/batch", batch)
        batch_stable = [stable(e) for e in batch_truth["results"]]

        install(
            FaultPlan(
                [
                    FaultRule(site="transport.send", probability=rate),
                    FaultRule(site="transport.recv", probability=rate),
                ],
                seed=seed,
            )
        )
        outcomes = {"ok": 0, "retryable": 0}
        for i in range(12):
            if i % 3 == 2:
                status, body = cluster.dispatch_safe("/v1/batch", batch)
                expected = batch_stable
            else:
                status, body = cluster.dispatch_safe("/v1/query", query)
                expected = truth_stable
            if status == 200:
                # the cardinal invariant: faults may slow or fail a
                # request, but a served answer is always the right one
                assert [stable(e) for e in body["results"]] == expected
                assert "degraded" not in body
                outcomes["ok"] += 1
            else:
                # the only acceptable failures are the pinned retryable ones
                assert status in (503, 504), body
                assert body["error"]["type"] in (
                    "ShardUnavailableError",
                    "DeadlineExceededError",
                ), body
                outcomes["retryable"] += 1
        # patient retries absorb a 5-15% frame-fault rate almost entirely
        assert outcomes["ok"] >= 9, outcomes


# --------------------------------------------------------------------- #
# Deadlines against a dead shard: the pinned 504, both topologies
# --------------------------------------------------------------------- #
class TestDeadlineCrossTopology:
    def test_dead_shard_pins_504_fast_and_identically(
        self, cluster, reference
    ) -> None:
        victim = 1
        cluster.supervisor.kill(victim)
        try:
            payload = {
                "dataset": "dblp",
                "keywords": KEYWORDS,
                "options": OPTIONS,
                "deadline_ms": 100,
            }
            started = time.perf_counter()
            status, cluster_body = cluster.dispatch_safe("/v1/query", payload)
            elapsed = time.perf_counter() - started
            assert status == 504, cluster_body
            assert cluster_body == encode_error(DeadlineExceededError(100), 504)
            # the budget, not the router's 30s flat timeout, set the clock
            assert elapsed < 0.75, f"504 took {elapsed:.3f}s for a 100ms budget"

            # single process, same budget blown by slow IO instead of a
            # dead shard: the body must be byte-identical
            install(
                FaultPlan(
                    [FaultRule(site="db.io", kind="delay", delay_seconds=0.02)]
                )
            )
            assert (
                reference.dispatch_safe(
                    "/v1/admin/invalidate", {"dataset": "dblp"}
                )[0]
                == 200
            )
            single_payload = {
                "dataset": "dblp",
                "keywords": KEYWORDS,
                "options": {"l": 8, "backend": "database"},
                "deadline_ms": 100,
            }
            status, single_body = reference.dispatch_safe(
                "/v1/query", single_payload
            )
            assert status == 504, single_body
            assert json.dumps(single_body, sort_keys=True) == json.dumps(
                cluster_body, sort_keys=True
            )
        finally:
            uninstall()
            wait_all_ready(cluster)

    def test_generous_budget_is_invisible(self, cluster, reference) -> None:
        payload = {
            "dataset": "dblp",
            "keywords": KEYWORDS,
            "options": OPTIONS,
            "deadline_ms": 60_000,
        }
        status, sharded = cluster.dispatch_safe("/v1/query", payload)
        plain = dict(payload)
        del plain["deadline_ms"]
        ref_status, single = reference.dispatch_safe("/v1/query", plain)
        assert (status, ref_status) == (200, 200)
        assert [stable(e) for e in sharded["results"]] == [
            stable(e) for e in single["results"]
        ]
        assert "degraded" not in sharded


# --------------------------------------------------------------------- #
# Degraded mode: partial answers instead of 503, clearly marked
# --------------------------------------------------------------------- #
class TestDegradedServing:
    def test_allow_partial_serves_the_healthy_shards(
        self, cluster, reference
    ) -> None:
        query = {"dataset": "dblp", "keywords": KEYWORDS, "options": OPTIONS}
        _, truth = reference.dispatch_safe("/v1/query", query)
        truth_by_rank = {e["rank"]: stable(e) for e in truth["results"]}

        # a router with short patience: a dead shard must cost ~patience,
        # not the full request timeout
        router = ClusterRouter(
            cluster.supervisor,
            request_timeout=10.0,
            retry_interval=0.02,
            breaker_threshold=3,
            breaker_reset=0.2,
            partial_patience=0.3,
        )
        victim = 2
        cluster.supervisor.kill(victim)
        try:
            wait_shard_down(cluster)
            started = time.perf_counter()
            status, body = router.dispatch_safe(
                "/v1/query", dict(query, allow_partial=True)
            )
            elapsed = time.perf_counter() - started
            assert status == 200, body
            assert body["degraded"] is True
            assert body["missing_shards"] == [victim]
            assert elapsed < 5.0
            # every surviving entry is *correct* and keeps its global rank
            assert body["results"], "two healthy shards must contribute"
            assert len(body["results"]) < len(truth["results"])
            for entry in body["results"]:
                assert stable(entry) == truth_by_rank[entry["rank"]]
            assert body["total_matches"] == truth["total_matches"]

            # stats broadcasts degrade the same way
            status, stats = router.dispatch_safe(
                "/v1/stats", {"dataset": "dblp", "allow_partial": True}
            )
            assert status == 200, stats
            assert stats["degraded"] is True
            assert stats["missing_shards"] == [victim]
            assert "cache" in stats

            # without the flag the same query is the pinned 503/504 or a
            # patient success — never a silently shorter result list
            impatient = ClusterRouter(cluster.supervisor, request_timeout=0.5)
            status, body = impatient.dispatch_safe("/v1/query", query)
            if status == 200:
                assert [stable(e) for e in body["results"]] == [
                    stable(e) for e in truth["results"]
                ]
            else:
                assert status == 503
                assert body["error"]["type"] == "ShardUnavailableError"
            impatient.close()
        finally:
            router.close()
            wait_all_ready(cluster)

        # healthy again: allow_partial responses carry no degraded marker
        status, body = cluster.dispatch_safe(
            "/v1/query", dict(query, allow_partial=True)
        )
        assert status == 200
        assert "degraded" not in body and "missing_shards" not in body
        assert [stable(e) for e in body["results"]] == [
            stable(e) for e in truth["results"]
        ]


# --------------------------------------------------------------------- #
# healthz: per-shard states
# --------------------------------------------------------------------- #
class TestHealthz:
    def test_healthy_cluster_reports_ok_everywhere(self, cluster) -> None:
        wait_all_ready(cluster)
        body = cluster.router.healthz()
        assert body["ok"] is True
        assert body["role"] == "router"
        assert [info["state"] for info in body["shards"]] == ["ok", "ok", "ok"]

    def test_killed_shard_reports_restarting(self, cluster) -> None:
        victim = 0
        cluster.supervisor.kill(victim)
        try:
            wait_shard_down(cluster)
            body = cluster.router.healthz()
            assert body["ok"] is False
            by_shard = {info["shard"]: info for info in body["shards"]}
            assert by_shard[victim]["state"] == "restarting"
        finally:
            wait_all_ready(cluster)

    def test_open_breaker_reports_breaker_open(self, cluster) -> None:
        wait_all_ready(cluster)
        router = ClusterRouter(cluster.supervisor, breaker_threshold=2)
        try:
            for _ in range(2):
                router._breakers[1].record_failure()
            body = router.healthz()
            by_shard = {info["shard"]: info for info in body["shards"]}
            assert by_shard[1]["state"] == "breaker_open"
            assert by_shard[0]["state"] == "ok"
            assert body["ok"] is True  # supervisor readiness, not breakers
        finally:
            router.close()

    def test_single_process_body_is_unchanged_and_builds_no_session(self) -> None:
        """The pre-PR 7 single-process healthz body is pinned; reaching it
        must never trigger a session build."""
        deployment = Deployment().add("dblp", named="dblp", seed=SEED, scale=0.25)

        def boom(*_args, **_kwargs):
            raise AssertionError("healthz must not build a session")

        deployment.session = boom  # type: ignore[method-assign]
        server = ServiceHTTPServer(
            ("127.0.0.1", 0), ServiceDispatcher(deployment)
        )
        try:
            assert server.healthz() == {
                "ok": True,
                "role": "single-process",
                "datasets": deployment.names(),
            }
        finally:
            server.server_close()


# --------------------------------------------------------------------- #
# HTTP front-end decoration: Retry-After and the deadline header
# --------------------------------------------------------------------- #
class _ScriptedDispatcher:
    """A dispatcher stub: fixed reply, records every payload it saw."""

    def __init__(self, status: int, body: dict) -> None:
        self.status = status
        self.body = body
        self.calls: list[tuple[str, object]] = []

    def dispatch_safe(self, endpoint: str, payload: object = None):
        self.calls.append((endpoint, payload))
        return self.status, self.body


@pytest.fixture()
def http_server():
    servers = []

    def factory(dispatcher):
        server = ServiceHTTPServer(("127.0.0.1", 0), dispatcher)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.shutdown()
        server.server_close()


def _post(url: str, payload: dict, headers: dict | None = None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), json.loads(err.read())


class TestHTTPReliabilitySurface:
    def test_shard_unavailable_503_carries_retry_after(self, http_server) -> None:
        body = encode_error(ShardUnavailableError(1, "worker is down"), 503)
        server = http_server(_ScriptedDispatcher(503, body))
        status, headers, got = _post(server.url + "/v1/query", {"dataset": "d"})
        assert status == 503
        assert headers.get("Retry-After") == "1"
        assert got == body

    def test_504_and_other_503s_do_not(self, http_server) -> None:
        gone = encode_error(DeadlineExceededError(100), 504)
        server = http_server(_ScriptedDispatcher(504, gone))
        status, headers, _ = _post(server.url + "/v1/query", {"dataset": "d"})
        assert status == 504
        assert headers.get("Retry-After") is None

    def test_deadline_header_becomes_the_budget_field(self, http_server) -> None:
        scripted = _ScriptedDispatcher(200, {"ok": True})
        server = http_server(scripted)
        status, _headers, _ = _post(
            server.url + "/v1/query",
            {"dataset": "d"},
            headers={DEADLINE_HEADER: "250"},
        )
        assert status == 200
        assert scripted.calls[-1][1] == {"dataset": "d", "deadline_ms": 250}

    def test_body_field_wins_over_the_header(self, http_server) -> None:
        scripted = _ScriptedDispatcher(200, {"ok": True})
        server = http_server(scripted)
        _post(
            server.url + "/v1/query",
            {"dataset": "d", "deadline_ms": 50},
            headers={DEADLINE_HEADER: "250"},
        )
        assert scripted.calls[-1][1] == {"dataset": "d", "deadline_ms": 50}

    def test_invalid_deadline_header_is_a_400(self, http_server) -> None:
        scripted = _ScriptedDispatcher(200, {"ok": True})
        server = http_server(scripted)
        for bad in ("abc", "0", "-5"):
            status, _headers, got = _post(
                server.url + "/v1/query",
                {"dataset": "d"},
                headers={DEADLINE_HEADER: bad},
            )
            assert status == 400
            assert got["error"]["type"] == "RequestValidationError"
        assert scripted.calls == []  # never reached dispatch

    def test_stats_allow_partial_query_param(self, http_server) -> None:
        scripted = _ScriptedDispatcher(200, {"ok": True})
        server = http_server(scripted)
        with urllib.request.urlopen(
            server.url + "/v1/stats?dataset=d&allow_partial=1", timeout=30
        ) as response:
            assert response.status == 200
        assert scripted.calls[-1] == (
            "/v1/stats",
            {"dataset": "d", "allow_partial": True},
        )


# --------------------------------------------------------------------- #
# Worker-process faults via the environment
# --------------------------------------------------------------------- #
class TestWorkerStartupFaults:
    def test_startup_fault_fails_the_spawn_with_the_stderr_tail(
        self, monkeypatch
    ) -> None:
        plan = FaultPlan([FaultRule(site="worker.startup")], seed=1)
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        spec = DatasetSpec(name="dblp", database="dblp", seed=SEED, scale=0.25)
        broken = Cluster([spec], shards=1, startup_timeout=60)
        with pytest.raises(WorkerStartupError, match="injected fault"):
            broken.start()
        broken.stop()
