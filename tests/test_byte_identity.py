"""Cross-topology byte-identity: every pinned body, middleware installed.

Sharding (PR 6) and now the middleware pipeline (PR 8) are implementation
details of the service: with the stack installed but disarmed, every
pinned error body — 400, 404, 405, 409, 413, 503, 504 — and every new
armed body — 401, 429 — must be **byte-identical** between the
single-process server and the sharded cluster.  This suite compares raw
HTTP response bytes between the two topologies, both serving the same
scale-0.5 DBLP recipe through a full (access-logged) pipeline.

It also pins the two PR-8 cluster behaviours that cannot be seen from one
process: the request id riding router→worker hops into the workers' hop
logs, and ``/v1/metrics`` merging ``CacheStats`` across shards.
"""

from __future__ import annotations

import http.client
import io
import json
import os
import shutil
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cluster import Cluster, DatasetSpec
from repro.reliability import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultRule,
    install,
    uninstall,
)
from repro.service import Deployment, MiddlewareConfig, create_server
from repro.service.dispatch import ServiceDispatcher
from repro.service.http import MAX_BODY_BYTES
from repro.service.middleware import REQUEST_ID_HEADER
from repro.service.protocol import Cursor

SEED, SCALE = 7, 0.5
KEYWORDS = ["Faloutsos"]
OPTIONS = {"l": 8}

#: Entry fields stable across processes (stats carries wall-clock
#: timings and cache-hit flags, which legitimately differ).
_STABLE = (
    "rank",
    "table",
    "row_id",
    "match_importance",
    "importance",
    "l",
    "algorithm",
    "selected_uids",
    "rendered",
)


def stable(entry: dict) -> dict:
    return {key: entry[key] for key in _STABLE}


@pytest.fixture(autouse=True)
def disarm_faults():
    """No test may leak an armed in-process plan into the next."""
    yield
    uninstall()


# --------------------------------------------------------------------- #
# One recipe, two topologies (module-scoped: workers are subprocesses)
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    """A tiny but valid snapshot of the shared recipe (for the 409 test:
    both topologies attach it at startup, then the test deletes it and
    reloads)."""
    from repro.persist import precompute_snapshot, select_subjects

    scratch = Deployment().add("dblp", named="dblp", seed=SEED, scale=SCALE)
    try:
        engine = scratch.session("dblp").engine
        subjects = list(select_subjects(engine, table="author"))[:2]
        path = tmp_path_factory.mktemp("snap") / "dblp-snapshot"
        precompute_snapshot(engine, subjects, path)
    finally:
        scratch.close()
    return path


@pytest.fixture(scope="module")
def single(snapshot_path):
    deployment = Deployment().add(
        "dblp",
        named="dblp",
        seed=SEED,
        scale=SCALE,
        cache_size=64,
        snapshot=snapshot_path,
    )
    yield ServiceDispatcher(deployment)
    deployment.close()


@pytest.fixture(scope="module")
def cluster(snapshot_path, tmp_path_factory):
    """A 2-shard cluster over the same recipe.

    Workers spawn with a ``db.io`` error rule in ``REPRO_FAULT_PLAN`` —
    inert for the default in-memory backend, armed the moment a test asks
    for ``backend="database"`` (the cross-topology 503).  Workers also
    append hop lines to a shared access log, which is how the
    id-propagation test observes the far side of the wire.
    """
    hop_log = tmp_path_factory.mktemp("hops") / "hops.jsonl"
    spec = DatasetSpec(
        name="dblp",
        database="dblp",
        seed=SEED,
        scale=SCALE,
        snapshot=str(snapshot_path),
    )
    plan = FaultPlan([FaultRule(site="db.io")])
    os.environ[FAULT_PLAN_ENV] = plan.to_json()
    try:
        running = Cluster(
            [spec],
            shards=2,
            cache_size=32,
            startup_timeout=240,
            access_log=str(hop_log),
        ).start()
    finally:
        os.environ.pop(FAULT_PLAN_ENV, None)
    try:
        yield running, hop_log
    finally:
        running.stop()


def wait_shard_down(running: Cluster, timeout: float = 30.0) -> None:
    """Block until the supervisor *notices* a kill — acting on a freshly
    killed shard before this races its stale ready state."""
    deadline = time.monotonic() + timeout
    while running.supervisor.ready_count() == running.shards:
        assert time.monotonic() < deadline, "supervisor never noticed the kill"
        time.sleep(0.02)


def wait_all_ready(running: Cluster, timeout: float = 240.0) -> None:
    """Block until every shard is respawned AND serving again (breaker
    closed) — the next test must see a fully healthy cluster."""
    deadline = time.monotonic() + timeout
    while running.supervisor.ready_count() < running.shards:
        assert time.monotonic() < deadline, "cluster did not recover in time"
        time.sleep(0.05)
    probe = {"dataset": "dblp", "keywords": KEYWORDS, "options": OPTIONS}
    while True:
        # a full scatter doubles as the breaker's probe: a half-open
        # breaker only closes again on a successful request
        status, _ = running.dispatch_safe("/v1/query", probe)
        health = running.router.healthz()
        if status == 200 and all(info["state"] == "ok" for info in health["shards"]):
            return
        assert time.monotonic() < deadline, f"router never healed: {health!r}"
        time.sleep(0.1)


def _spawn(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _teardown(server, thread):
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def single_http(single):
    config = MiddlewareConfig(access_log=io.StringIO())
    server, thread = _spawn(create_server(single.deployment, middleware=config))
    yield server
    _teardown(server, thread)


@pytest.fixture(scope="module")
def cluster_http(cluster):
    running, _ = cluster
    config = MiddlewareConfig(access_log=io.StringIO())
    server, thread = _spawn(running.create_http_server(middleware=config))
    yield server
    _teardown(server, thread)


# --------------------------------------------------------------------- #
# Request plumbing
# --------------------------------------------------------------------- #
def call(server, path, body=None, headers=None, method=None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        server.url + path,
        data=data,
        method=method or ("POST" if data is not None else "GET"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def both(single_http, cluster_http, path, body=None, headers=None, method=None):
    return (
        call(single_http, path, body, headers, method),
        call(cluster_http, path, body, headers, method),
    )


def assert_identical(single_reply, cluster_reply, status):
    """The core claim: same status, byte-identical body."""
    assert single_reply[0] == status, single_reply[2]
    assert cluster_reply[0] == status, cluster_reply[2]
    assert single_reply[2] == cluster_reply[2]


# --------------------------------------------------------------------- #
# Pinned bodies, disarmed stack
# --------------------------------------------------------------------- #
class TestPinnedBodies:
    def test_400_invalid_payload(self, single_http, cluster_http) -> None:
        replies = both(single_http, cluster_http, "/v1/query", {"dataset": "dblp"})
        assert_identical(*replies, 400)
        assert json.loads(replies[0][2])["error"]["type"] == "RequestValidationError"

    def test_400_stale_cursor(self, single_http, cluster_http) -> None:
        payload = {
            "dataset": "dblp",
            "keywords": KEYWORDS,
            "options": OPTIONS,
            "cursor": Cursor(rank=0, table="paper", row_id=999_999).encode(),
        }
        replies = both(single_http, cluster_http, "/v1/query", payload)
        assert_identical(*replies, 400)
        assert "stale cursor" in json.loads(replies[0][2])["error"]["message"]

    def test_404_unknown_dataset(self, single_http, cluster_http) -> None:
        payload = {"dataset": "ghost", "keywords": KEYWORDS, "options": OPTIONS}
        replies = both(single_http, cluster_http, "/v1/query", payload)
        assert_identical(*replies, 404)
        assert json.loads(replies[0][2])["error"]["type"] == "UnknownDatasetError"

    def test_404_unknown_endpoint(self, single_http, cluster_http) -> None:
        replies = both(single_http, cluster_http, "/v1/nonsense")
        assert_identical(*replies, 404)

    def test_405_wrong_method(self, single_http, cluster_http) -> None:
        replies = both(single_http, cluster_http, "/v1/query", method="GET")
        assert_identical(*replies, 405)
        assert replies[0][1]["Allow"] == replies[1][1]["Allow"] == "POST"

    def test_413_oversized_body(self, single_http, cluster_http) -> None:
        def oversized(server):
            conn = http.client.HTTPConnection(
                server.server_address[0], server.port, timeout=30
            )
            try:
                conn.putrequest("POST", "/v1/query")
                conn.putheader("Content-Type", "application/json")
                conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
                conn.endheaders()
                response = conn.getresponse()
                return response.status, dict(response.headers), response.read()
            finally:
                conn.close()

        replies = (oversized(single_http), oversized(cluster_http))
        assert_identical(*replies, 413)
        assert json.loads(replies[0][2])["error"]["type"] == "PayloadTooLargeError"

    def test_503_backend_io(self, single_http, cluster_http) -> None:
        """Same injected IO fault (in-process for single, via the worker
        env plan for the cluster) → the same pinned retryable body."""
        install(FaultPlan([FaultRule(site="db.io")]))
        payload = {
            "dataset": "dblp",
            "keywords": KEYWORDS,
            "options": {"l": 8, "backend": "database"},
        }
        invalidate = {"dataset": "dblp"}
        replies = both(
            single_http, cluster_http, "/v1/admin/invalidate", invalidate
        )
        assert replies[0][0] == replies[1][0] == 200
        replies = both(single_http, cluster_http, "/v1/query", payload)
        assert_identical(*replies, 503)
        body = json.loads(replies[0][2])
        assert body["error"]["type"] == "BackendIOError"
        assert "db.io" in body["error"]["message"]

    def test_504_deadline(self, single_http, cluster_http, cluster) -> None:
        """A blown 100ms budget — via a dead shard on the cluster, via
        slow injected IO in the single process — pins the same body."""
        running, _ = cluster
        running.supervisor.kill(1)
        wait_shard_down(running)
        try:
            payload = {
                "dataset": "dblp",
                "keywords": KEYWORDS,
                "options": OPTIONS,
                "deadline_ms": 100,
            }
            cluster_reply = call(cluster_http, "/v1/query", payload)

            install(
                FaultPlan([FaultRule(site="db.io", kind="delay", delay_seconds=0.02)])
            )
            assert call(single_http, "/v1/admin/invalidate", {"dataset": "dblp"})[0] == 200
            single_reply = call(
                single_http,
                "/v1/query",
                {
                    "dataset": "dblp",
                    "keywords": KEYWORDS,
                    "options": {"l": 8, "backend": "database"},
                    "deadline_ms": 100,
                },
            )
            assert_identical(single_reply, cluster_reply, 504)
            assert (
                json.loads(single_reply[2])["error"]["type"] == "DeadlineExceededError"
            )
        finally:
            uninstall()
            wait_all_ready(running)

    def test_409_reload_after_snapshot_loss(
        self, single_http, cluster_http, snapshot_path
    ) -> None:
        """Deleting the snapshot directory then reloading answers the
        pinned 409 on both topologies — and both keep serving."""
        shutil.rmtree(snapshot_path)
        replies = both(
            single_http, cluster_http, "/v1/admin/reload", {"dataset": "dblp"}
        )
        assert_identical(*replies, 409)
        query = {"dataset": "dblp", "keywords": KEYWORDS, "options": OPTIONS}
        replies = both(single_http, cluster_http, "/v1/query", query)
        assert replies[0][0] == replies[1][0] == 200  # still serving


# --------------------------------------------------------------------- #
# Pinned bodies, armed stack (401 / 429)
# --------------------------------------------------------------------- #
class TestArmedBodies:
    @pytest.fixture()
    def armed_pair(self, single, cluster, tmp_path):
        tokens = tmp_path / "tokens"
        tokens.write_text("alice:sesame\n", encoding="utf-8")
        config = MiddlewareConfig(auth_token_file=tokens, rate_limit=10_000.0)
        running, _ = cluster
        servers = [
            _spawn(create_server(single.deployment, middleware=config)),
            _spawn(running.create_http_server(middleware=config)),
        ]
        yield servers[0][0], servers[1][0]
        for server, thread in servers:
            _teardown(server, thread)

    @pytest.fixture()
    def throttled_pair(self, single, cluster):
        config = MiddlewareConfig(rate_limit=0.001, rate_burst=1)
        running, _ = cluster
        servers = [
            _spawn(create_server(single.deployment, middleware=config)),
            _spawn(running.create_http_server(middleware=config)),
        ]
        yield servers[0][0], servers[1][0]
        for server, thread in servers:
            _teardown(server, thread)

    def test_401_missing_and_wrong_credentials(self, armed_pair) -> None:
        for headers in ({}, {"Authorization": "Bearer wrong"}):
            replies = both(*armed_pair, "/v1/datasets", headers=headers)
            assert_identical(*replies, 401)
            assert (
                replies[0][1]["WWW-Authenticate"]
                == replies[1][1]["WWW-Authenticate"]
                == "Bearer"
            )

    def test_good_credential_serves_both(self, armed_pair) -> None:
        headers = {"Authorization": "Bearer sesame"}
        payload = {"dataset": "dblp", "keywords": KEYWORDS, "options": OPTIONS}
        replies = both(*armed_pair, "/v1/query", payload, headers=headers)
        assert replies[0][0] == replies[1][0] == 200
        assert [stable(e) for e in json.loads(replies[0][2])["results"]] == [
            stable(e) for e in json.loads(replies[1][2])["results"]
        ]

    def test_429_throttled(self, throttled_pair) -> None:
        for server in throttled_pair:  # each server grants its 1-token burst
            assert call(server, "/v1/datasets")[0] == 200
        replies = both(*throttled_pair, "/v1/datasets")
        assert_identical(*replies, 429)
        assert replies[0][1]["Retry-After"] == replies[1][1]["Retry-After"]


# --------------------------------------------------------------------- #
# Success path: same answers through the installed stack
# --------------------------------------------------------------------- #
class TestSuccessThroughMiddleware:
    def test_query_results_match(self, single_http, cluster_http) -> None:
        payload = {"dataset": "dblp", "keywords": KEYWORDS, "options": OPTIONS}
        replies = both(single_http, cluster_http, "/v1/query", payload)
        assert replies[0][0] == replies[1][0] == 200
        single_body = json.loads(replies[0][2])
        cluster_body = json.loads(replies[1][2])
        assert [stable(e) for e in single_body["results"]] == [
            stable(e) for e in cluster_body["results"]
        ]
        assert single_body["total_matches"] == cluster_body["total_matches"]
        assert single_body["next_cursor"] == cluster_body["next_cursor"]

    def test_pipeline_preserves_dispatcher_bytes(self, single, single_http) -> None:
        """The disarmed stack serves the byte-exact serialization of the
        bare dispatcher's body (pinned errors are deterministic dicts)."""
        payload = {"dataset": "ghost", "keywords": KEYWORDS, "options": OPTIONS}
        _status, bare = single.dispatch_safe("/v1/query", payload)
        reply = call(single_http, "/v1/query", payload)
        assert reply[2] == json.dumps(bare).encode("utf-8")


# --------------------------------------------------------------------- #
# Cluster-only PR-8 behaviours: hop ids and merged metrics
# --------------------------------------------------------------------- #
class TestClusterObservability:
    def test_request_id_rides_into_worker_hop_logs(
        self, cluster_http, cluster
    ) -> None:
        _, hop_log = cluster
        payload = {"dataset": "dblp", "keywords": KEYWORDS, "options": OPTIONS}
        status, headers, _ = call(
            cluster_http,
            "/v1/query",
            payload,
            headers={REQUEST_ID_HEADER: "hop-trace-1"},
        )
        assert status == 200
        assert headers[REQUEST_ID_HEADER] == "hop-trace-1"
        deadline = time.monotonic() + 10.0
        records = []
        while time.monotonic() < deadline:
            if hop_log.exists():
                records = [
                    json.loads(line)
                    for line in hop_log.read_text(encoding="utf-8").splitlines()
                    if line.strip()
                ]
                if any(r["id"] == "hop-trace-1" for r in records):
                    break
            time.sleep(0.05)
        hops = [r for r in records if r["id"] == "hop-trace-1"]
        assert hops, f"edge request id never reached a worker log: {records!r}"
        for record in hops:
            assert record["shard"] in (0, 1)
            assert record["dataset"] == "dblp"
            assert record["status"] == 200

    def test_metrics_merge_cache_stats_across_shards(
        self, cluster_http
    ) -> None:
        payload = {"dataset": "dblp", "keywords": KEYWORDS, "options": OPTIONS}
        assert call(cluster_http, "/v1/query", payload)[0] == 200
        status, headers, raw = call(cluster_http, "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = raw.decode("utf-8")
        assert 'repro_requests_total{endpoint="/v1/query",status="200"}' in text
        assert 'repro_cache_hits{dataset="dblp"}' in text
        assert 'repro_cache_result_computations{dataset="dblp"}' in text
