"""Property tests for the consistent-hash ring (`repro.cluster.hashring`).

The ring is the cluster's correctness anchor: every router (and every
router rebuilt after a crash) must place every subject on the same shard,
and resizing the shard set must strand as few warm cache entries as
possible.  Hypothesis drives arbitrary subject keys through both claims.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.hashring import DEFAULT_REPLICAS, HashRing
from repro.errors import ClusterError

#: Arbitrary subject keys.  Text includes the "\x1f" separator character
#: on purpose — the hash must not let crafted table names collide whole
#: keys into each other in a way that breaks determinism (it cannot:
#: determinism is per-string), and the ring must not crash on them.
_keys = st.tuples(
    st.text(min_size=0, max_size=20),
    st.text(min_size=0, max_size=20),
    st.integers(min_value=0, max_value=2**40),
)


class TestDeterminism:
    @given(key=_keys, shards=st.integers(min_value=1, max_value=9))
    @settings(max_examples=200, deadline=None)
    def test_independent_rings_agree(self, key, shards) -> None:
        """Placement is a pure function of the membership — the property
        that lets a restarted router keep routing to warm caches."""
        first = HashRing(shards)
        second = HashRing(shards)
        dataset, table, row_id = key
        assert first.owner(dataset, table, row_id) == second.owner(
            dataset, table, row_id
        )

    @given(key=_keys, shards=st.integers(min_value=1, max_value=9))
    @settings(max_examples=200, deadline=None)
    def test_owner_is_a_member(self, key, shards) -> None:
        dataset, table, row_id = key
        assert HashRing(shards).owner(dataset, table, row_id) in range(shards)

    def test_count_and_id_sequence_forms_agree(self) -> None:
        """``HashRing(4)`` is exactly ``HashRing(range(4))``."""
        by_count = HashRing(4)
        by_ids = HashRing([0, 1, 2, 3])
        for row_id in range(500):
            assert by_count.owner("dblp", "author", row_id) == by_ids.owner(
                "dblp", "author", row_id
            )


class TestBoundedMovement:
    @given(key=_keys, shards=st.integers(min_value=1, max_value=8))
    @settings(max_examples=300, deadline=None)
    def test_join_moves_keys_only_onto_the_new_shard(self, key, shards) -> None:
        """Growing N -> N+1 may re-home a key only to the *new* shard; a
        key that moved anywhere else would cold-start an unrelated cache."""
        dataset, table, row_id = key
        before = HashRing(shards).owner(dataset, table, row_id)
        after = HashRing(shards + 1).owner(dataset, table, row_id)
        assert after == before or after == shards

    @given(
        key=_keys,
        shards=st.integers(min_value=2, max_value=8),
        data=st.data(),
    )
    @settings(max_examples=300, deadline=None)
    def test_leave_moves_only_the_removed_shards_keys(
        self, key, shards, data
    ) -> None:
        """Removing a shard re-homes its keys and nothing else."""
        removed = data.draw(st.integers(min_value=0, max_value=shards - 1))
        dataset, table, row_id = key
        survivors = [s for s in range(shards) if s != removed]
        before = HashRing(shards).owner(dataset, table, row_id)
        after = HashRing(survivors).owner(dataset, table, row_id)
        if before == removed:
            assert after in survivors
        else:
            assert after == before


class TestBalance:
    def test_virtual_nodes_spread_the_load(self) -> None:
        """With the default replica count no shard owns a pathological
        share of a uniform key population (the bound is loose on purpose:
        consistent hashing trades perfect balance for stability)."""
        shards = 4
        ring = HashRing(shards)
        counts = [0] * shards
        for row_id in range(20_000):
            counts[ring.owner("dblp", "author", row_id)] += 1
        mean = sum(counts) / shards
        assert max(counts) / mean < 1.5
        assert min(counts) / mean > 0.5

    def test_more_replicas_is_a_real_knob(self) -> None:
        ring = HashRing(3, replicas=8)
        assert ring.replicas == 8
        assert len(ring._hashes) == 3 * 8


class TestValidation:
    def test_zero_shards_rejected(self) -> None:
        with pytest.raises(ClusterError, match="at least one shard"):
            HashRing(0)

    def test_empty_member_sequence_rejected(self) -> None:
        with pytest.raises(ClusterError, match="at least one shard"):
            HashRing([])

    def test_duplicate_members_rejected(self) -> None:
        with pytest.raises(ClusterError, match="duplicate shard ids"):
            HashRing([0, 1, 1])

    def test_zero_replicas_rejected(self) -> None:
        with pytest.raises(ClusterError, match="replicas"):
            HashRing(2, replicas=0)

    def test_default_replicas_pinned(self) -> None:
        assert DEFAULT_REPLICAS == 128
        assert HashRing(2).replicas == DEFAULT_REPLICAS
