"""Smoke tests: the fast example scripts must run end-to-end.

Only the quick examples run here (the full set is exercised manually /
in benches); each is executed in-process with a patched ``__main__`` guard
via ``runpy`` so coverage tools see them.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example script: {path}"
    argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


@pytest.mark.slow
def test_quickstart(capsys) -> None:
    out = _run_example("quickstart.py", capsys)
    assert "Author: Christos Faloutsos" in out
    assert "complete OS had" in out


def test_custom_database(capsys) -> None:
    out = _run_example("custom_database.py", capsys)
    assert "Student: Dana Quill" in out
    assert "Course:" in out
    assert "Computed Student G_DS" in out


@pytest.mark.slow
def test_algorithm_comparison(capsys) -> None:
    out = _run_example("algorithm_comparison.py", capsys)
    assert "optimal (DP)" in out
    assert "quality %" in out
