"""Public-API surface tests: everything README documents must import and
work from the top-level namespaces."""

from __future__ import annotations

import pytest


class TestTopLevelImports:
    def test_root_namespace(self) -> None:
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_core_namespace(self) -> None:
        import repro.core

        for name in repro.core.__all__:
            assert hasattr(repro.core, name), f"repro.core.{name} missing"

    def test_version(self) -> None:
        import repro

        assert repro.__version__ == "1.2.0"


class TestReadmeQuickstart:
    """The exact code shown in the README must run."""

    def test_quickstart_snippet(self) -> None:
        from repro.core import SizeLEngine
        from repro.datasets.dblp import small_dblp
        from repro.ranking import compute_objectrank

        data = small_dblp()
        store = compute_objectrank(data.db, data.ga1())
        engine = SizeLEngine(
            data.db,
            {"author": data.author_gds(), "paper": data.paper_gds()},
            store,
        )
        results = engine.keyword_query("Faloutsos", l=15)
        assert len(results) == 3
        for entry in results:
            assert entry.result.render()

    def test_lower_level_entry_points(self, dblp_engine) -> None:
        os_tree = dblp_engine.complete_os("author", 0)
        assert os_tree.size > 0
        prelim, stats = dblp_engine.prelim_os("author", 0, l=10)
        assert prelim.size >= 10
        result = dblp_engine.size_l(
            "author", 0, l=10, algorithm="top_path", source="prelim"
        )
        assert result.size == 10


class TestGdsApi:
    def test_node_lookup_and_has_node(self, dblp_engine) -> None:
        gds = dblp_engine.gds_for("author")
        assert gds.has_node("Paper")
        assert not gds.has_node("Nonexistent")
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            gds.node("Nonexistent")

    def test_root_table(self, dblp_engine) -> None:
        assert dblp_engine.gds_for("author").root_table == "author"

    def test_render_contains_annotations(self, dblp_engine) -> None:
        text = dblp_engine.gds_for("author").render()
        assert "af=" in text and "max=" in text and "mmax=" in text
