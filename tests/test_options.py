"""Tests for the typed options layer: QueryOptions validation, the
resolve_options deprecation shim, and ResultStats mapping compatibility."""

from __future__ import annotations

import pytest

from repro.core.options import (
    Algorithm,
    Backend,
    QueryOptions,
    ResultStats,
    Source,
    resolve_options,
)
from repro.errors import InvalidSizeError, SummaryError


class TestQueryOptionsValidation:
    def test_defaults_follow_the_paper_pipeline(self) -> None:
        opts = QueryOptions().normalized()
        assert opts.l == 10
        assert opts.algorithm is Algorithm.TOP_PATH
        assert opts.source is Source.PRELIM
        assert opts.backend is Backend.DATAGRAPH

    def test_strings_coerce_to_enums(self) -> None:
        opts = QueryOptions(
            algorithm="dp", source="complete", backend="database"
        ).normalized()
        assert opts.algorithm is Algorithm.DP
        assert opts.source is Source.COMPLETE
        assert opts.backend is Backend.DATABASE

    @pytest.mark.parametrize("bad_l", [0, -3, 2.5, True, "10", None])
    def test_bad_l_uniform_message(self, bad_l: object) -> None:
        with pytest.raises(InvalidSizeError, match="positive integer"):
            QueryOptions(l=bad_l).normalized()  # type: ignore[arg-type]

    def test_unknown_algorithm_lists_choices(self) -> None:
        with pytest.raises(SummaryError, match="unknown algorithm 'magic'"):
            QueryOptions(algorithm="magic").normalized()

    def test_unknown_source(self) -> None:
        with pytest.raises(SummaryError, match="unknown source"):
            QueryOptions(source="partial").normalized()

    def test_unknown_backend(self) -> None:
        with pytest.raises(SummaryError, match="unknown backend"):
            QueryOptions(backend="ramdisk").normalized()

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True])
    def test_bad_max_results(self, bad: object) -> None:
        with pytest.raises(SummaryError, match="max_results"):
            QueryOptions(max_results=bad).normalized()  # type: ignore[arg-type]

    @pytest.mark.parametrize("bad", [-1, 2.5, True])
    def test_bad_depth_limit(self, bad: object) -> None:
        with pytest.raises(SummaryError, match="depth_limit"):
            QueryOptions(depth_limit=bad).normalized()  # type: ignore[arg-type]

    def test_non_string_algorithm_rejected(self) -> None:
        with pytest.raises(SummaryError, match="algorithm"):
            QueryOptions(algorithm=42).normalized()  # type: ignore[arg-type]

    def test_normalized_is_idempotent(self) -> None:
        once = QueryOptions(algorithm="top_path", source="prelim").normalized()
        assert once.normalized() == once

    def test_frozen(self) -> None:
        with pytest.raises(Exception):
            QueryOptions().l = 5  # type: ignore[misc]

    def test_replace_returns_new_options(self) -> None:
        base = QueryOptions(l=5)
        bumped = base.replace(l=9)
        assert base.l == 5 and bumped.l == 9

    def test_canonical_names_and_cache_key(self) -> None:
        opts = QueryOptions(
            l=7, algorithm=Algorithm.DP, source=Source.COMPLETE
        ).normalized()
        assert opts.algorithm_name == "dp"
        assert opts.source_name == "complete"
        assert opts.backend_name == "datagraph"
        assert opts.cache_key() == (7, "dp", "complete", "datagraph", None, True)


class TestResolveOptionsShim:
    DEFAULTS = QueryOptions()

    def test_string_kwargs_warn_and_map_to_enums(self) -> None:
        with pytest.warns(DeprecationWarning, match="deprecated"):
            opts = resolve_options(
                None, defaults=self.DEFAULTS, algorithm="dp", source="complete"
            )
        assert opts.algorithm is Algorithm.DP
        assert opts.source is Source.COMPLETE

    def test_enum_kwargs_stay_silent(self) -> None:
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            opts = resolve_options(
                None, defaults=self.DEFAULTS, algorithm=Algorithm.BOTTOM_UP
            )
        assert opts.algorithm is Algorithm.BOTTOM_UP

    def test_options_plus_legacy_kwargs_rejected(self) -> None:
        with pytest.raises(SummaryError, match="not both"):
            resolve_options(
                QueryOptions(), defaults=self.DEFAULTS, algorithm="dp"
            )

    def test_l_and_max_results_accompany_options(self) -> None:
        opts = resolve_options(
            QueryOptions(algorithm=Algorithm.DP),
            defaults=self.DEFAULTS,
            l=3,
            max_results=2,
        )
        assert opts.l == 3 and opts.max_results == 2
        assert opts.algorithm is Algorithm.DP

    def test_defaults_pass_through(self) -> None:
        opts = resolve_options(None, defaults=self.DEFAULTS)
        assert opts == self.DEFAULTS.normalized()


class TestResultStatsMapping:
    def make(self) -> ResultStats:
        stats = ResultStats(
            source="complete",
            backend="datagraph",
            initial_os_size=42,
        )
        stats["heap_dequeues"] = 7
        return stats

    def test_typed_fields_via_getitem(self) -> None:
        stats = self.make()
        assert stats["initial_os_size"] == 42
        assert stats["source"] == "complete"
        assert stats["heap_dequeues"] == 7

    def test_counters_and_contains(self) -> None:
        stats = self.make()
        assert "heap_dequeues" in stats
        assert "prelim" not in stats
        assert stats.get("missing", "x") == "x"

    def test_items_round_trip(self) -> None:
        stats = self.make()
        as_dict = dict(stats.items())
        assert as_dict["backend"] == "datagraph"
        assert as_dict["heap_dequeues"] == 7

    def test_setitem_and_update(self) -> None:
        stats = self.make()
        stats["cached"] = True
        stats.update({"dp_cells": 99})
        assert stats.cached is True
        assert stats.counters["dp_cells"] == 99

    def test_len_and_iter(self) -> None:
        stats = self.make()
        assert len(stats) == len(list(stats))

    def test_from_counters(self) -> None:
        stats = ResultStats.from_counters({"a": 1}, source="prelim")
        assert stats.counters == {"a": 1}
        assert stats.source == "prelim"
