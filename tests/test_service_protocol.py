"""Tests for the wire protocol: codec round-trips and strict validation.

The property tests pin the codec identity ``decode(encode(x)) == x`` over
randomized options (including ``snapshot=False`` and ``ParallelConfig``),
cursors, requests, and responses; the validation tests pin that unknown,
missing, and ill-typed fields produce the 400-style
:class:`RequestValidationError` — never a silent partial decode.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.options import ParallelConfig, QueryOptions
from repro.errors import RequestValidationError
from repro.service.protocol import (
    PROTOCOL_VERSION,
    BatchRequest,
    Cursor,
    QueryRequest,
    QueryResponse,
    ResultEntry,
    SizeLRequest,
    decode_batch_request,
    decode_options,
    decode_query_request,
    decode_query_response,
    decode_request,
    decode_size_l_request,
    encode_error,
    encode_request,
    encode_response,
)

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
parallel_configs = st.one_of(
    st.none(),
    st.builds(
        ParallelConfig,
        workers=st.integers(min_value=1, max_value=8),
        ordered=st.booleans(),
    ),
)

query_options = st.builds(
    QueryOptions,
    l=st.integers(min_value=1, max_value=50),
    algorithm=st.sampled_from(["dp", "bottom_up", "top_path", "top_path_optimized"]),
    source=st.sampled_from(["complete", "prelim"]),
    backend=st.sampled_from(["datagraph", "database"]),
    max_results=st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
    depth_limit=st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
    flat=st.booleans(),
    snapshot=st.booleans(),
    parallel=parallel_configs,
)

cursors = st.builds(
    Cursor,
    rank=st.integers(min_value=0, max_value=10_000),
    table=st.text(min_size=1, max_size=20),
    row_id=st.integers(min_value=0, max_value=10_000_000),
)

query_requests = st.builds(
    QueryRequest,
    dataset=st.sampled_from(["dblp", "tpch", "prod-east"]),
    keywords=st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=4).map(
        tuple
    ),
    options=query_options.map(lambda o: o.normalized()),
    cursor=st.one_of(st.none(), cursors),
    page_size=st.one_of(st.none(), st.integers(min_value=1, max_value=100)),
)

size_l_requests = st.builds(
    SizeLRequest,
    dataset=st.sampled_from(["dblp", "tpch"]),
    table=st.sampled_from(["author", "customer"]),
    row_id=st.integers(min_value=0, max_value=10_000),
    options=query_options.map(lambda o: o.normalized()),
)

batch_requests = st.builds(
    BatchRequest,
    dataset=st.sampled_from(["dblp", "tpch"]),
    subjects=st.lists(
        st.tuples(
            st.sampled_from(["author", "paper"]), st.integers(min_value=0, max_value=99)
        ),
        min_size=1,
        max_size=5,
    ).map(tuple),
    options=query_options.map(lambda o: o.normalized()),
)

result_entries = st.builds(
    ResultEntry,
    rank=st.integers(min_value=0, max_value=100),
    table=st.sampled_from(["author", "customer"]),
    row_id=st.integers(min_value=0, max_value=10_000),
    match_importance=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    importance=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    l=st.integers(min_value=1, max_value=50),
    algorithm=st.sampled_from(["dp", "top_path"]),
    selected_uids=st.lists(
        st.integers(min_value=0, max_value=1000), max_size=8, unique=True
    ).map(lambda uids: tuple(sorted(uids))),
    rendered=st.text(max_size=40),
    stats=st.dictionaries(
        st.sampled_from(["initial_os_size", "cached", "source"]),
        st.integers(min_value=0, max_value=10),
        max_size=3,
    ),
)

query_responses = st.builds(
    QueryResponse,
    dataset=st.sampled_from(["dblp", "tpch"]),
    keywords=st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=3).map(
        tuple
    ),
    results=st.lists(result_entries, max_size=4).map(tuple),
    total_matches=st.integers(min_value=0, max_value=500),
    next_cursor=st.one_of(st.none(), cursors),
    cache=st.dictionaries(
        st.sampled_from(["hits", "misses", "disk_hits"]),
        st.integers(min_value=0, max_value=100),
        max_size=3,
    ),
)


# --------------------------------------------------------------------- #
# Round-trip identity
# --------------------------------------------------------------------- #
class TestRoundTrips:
    @settings(max_examples=60, deadline=None)
    @given(options=query_options)
    def test_options_roundtrip_is_identity(self, options: QueryOptions) -> None:
        normalized = options.normalized()
        assert decode_options(normalized.as_dict()) == normalized

    @settings(max_examples=60, deadline=None)
    @given(cursor=cursors)
    def test_cursor_roundtrip_is_identity(self, cursor: Cursor) -> None:
        assert Cursor.decode(cursor.encode()) == cursor

    @settings(max_examples=60, deadline=None)
    @given(request=query_requests)
    def test_query_request_roundtrip_is_identity(self, request: QueryRequest) -> None:
        assert decode_query_request(encode_request(request)) == request

    @settings(max_examples=40, deadline=None)
    @given(request=size_l_requests)
    def test_size_l_request_roundtrip_is_identity(self, request: SizeLRequest) -> None:
        assert decode_size_l_request(encode_request(request)) == request

    @settings(max_examples=40, deadline=None)
    @given(request=batch_requests)
    def test_batch_request_roundtrip_is_identity(self, request: BatchRequest) -> None:
        assert decode_batch_request(encode_request(request)) == request

    @settings(max_examples=40, deadline=None)
    @given(response=query_responses)
    def test_query_response_roundtrip_is_identity(
        self, response: QueryResponse
    ) -> None:
        assert decode_query_response(encode_response(response)) == response

    def test_decode_request_dispatches_by_kind(self) -> None:
        body = encode_request(
            QueryRequest("dblp", ("x",), QueryOptions().normalized())
        )
        assert isinstance(decode_request("query", body), QueryRequest)
        with pytest.raises(RequestValidationError, match="unknown request kind"):
            decode_request("nope", body)


# --------------------------------------------------------------------- #
# Strict validation (the pinned 400 shape)
# --------------------------------------------------------------------- #
class TestValidation:
    def test_unknown_request_field_rejected(self) -> None:
        with pytest.raises(RequestValidationError, match="unknown field"):
            decode_query_request(
                {"dataset": "dblp", "keywords": ["x"], "bogus": 1}
            )

    def test_missing_dataset_rejected(self) -> None:
        with pytest.raises(RequestValidationError, match="dataset"):
            decode_query_request({"keywords": ["x"]})

    def test_missing_keywords_rejected(self) -> None:
        with pytest.raises(RequestValidationError, match="keywords"):
            decode_query_request({"dataset": "dblp"})

    def test_empty_keywords_rejected(self) -> None:
        with pytest.raises(RequestValidationError, match="keywords"):
            decode_query_request({"dataset": "dblp", "keywords": []})

    def test_non_string_keywords_rejected(self) -> None:
        with pytest.raises(RequestValidationError, match="keywords"):
            decode_query_request({"dataset": "dblp", "keywords": [1, 2]})

    def test_unknown_options_field_rejected(self) -> None:
        with pytest.raises(RequestValidationError, match="unknown field"):
            decode_options({"ll": 5})

    def test_unknown_parallel_field_rejected(self) -> None:
        with pytest.raises(RequestValidationError, match="options.parallel"):
            decode_options({"parallel": {"workers": 2, "threads": 4}})

    def test_library_validation_maps_to_request_error(self) -> None:
        # invalid l and unknown algorithm both surface as the 400 error,
        # carrying the library's own message
        with pytest.raises(RequestValidationError, match="summary size l"):
            decode_options({"l": 0})
        with pytest.raises(RequestValidationError, match="unknown algorithm"):
            decode_options({"algorithm": "magic"})

    def test_wire_worker_cap_enforced(self) -> None:
        """A request must not be able to inflate the serving thread pool."""
        from repro.service.protocol import MAX_WIRE_WORKERS

        decoded = decode_options({"parallel": {"workers": MAX_WIRE_WORKERS}})
        assert decoded.parallel.workers == MAX_WIRE_WORKERS
        with pytest.raises(RequestValidationError, match="wire limit"):
            decode_options({"parallel": {"workers": MAX_WIRE_WORKERS + 1}})

    def test_batch_subject_cap_enforced(self) -> None:
        from repro.service.protocol import MAX_BATCH_SUBJECTS

        too_many = [["author", i] for i in range(MAX_BATCH_SUBJECTS + 1)]
        with pytest.raises(RequestValidationError, match="batch limit"):
            decode_batch_request({"dataset": "dblp", "subjects": too_many})

    def test_bad_page_size_rejected(self) -> None:
        with pytest.raises(RequestValidationError, match="page_size"):
            decode_query_request(
                {"dataset": "dblp", "keywords": ["x"], "page_size": 0}
            )

    def test_wrong_protocol_version_rejected(self) -> None:
        with pytest.raises(RequestValidationError, match="protocol_version"):
            decode_query_request(
                {
                    "protocol_version": PROTOCOL_VERSION + 1,
                    "dataset": "dblp",
                    "keywords": ["x"],
                }
            )

    def test_undecodable_cursor_rejected(self) -> None:
        with pytest.raises(RequestValidationError, match="cursor"):
            decode_query_request(
                {"dataset": "dblp", "keywords": ["x"], "cursor": "!!not-base64!!"}
            )
        with pytest.raises(RequestValidationError, match="cursor"):
            Cursor.decode(12345)

    def test_non_object_payload_rejected(self) -> None:
        with pytest.raises(RequestValidationError, match="JSON object"):
            decode_query_request(["not", "a", "dict"])

    def test_bad_subjects_rejected(self) -> None:
        with pytest.raises(RequestValidationError, match="subjects"):
            decode_batch_request({"dataset": "dblp", "subjects": []})
        with pytest.raises(RequestValidationError, match=r"subjects\[1\]"):
            decode_batch_request(
                {"dataset": "dblp", "subjects": [["author", 1], ["author"]]}
            )

    def test_source_override_recomputes_flat_from_normalized_defaults(self) -> None:
        """Regression: a session's normalized prelim defaults carry the
        canonicalized flat=False; a wire request switching to the complete
        source must re-enter the columnar hot path (and the snapshot disk
        tier behind it), not inherit that stale canonicalization."""
        prelim_defaults = QueryOptions().normalized()  # flat canonicalized off
        assert prelim_defaults.flat is False
        decoded = decode_options({"source": "complete"}, defaults=prelim_defaults)
        assert decoded.flat is True
        # an explicit flat=false in the request still wins
        pinned = decode_options(
            {"source": "complete", "flat": False}, defaults=prelim_defaults
        )
        assert pinned.flat is False

    def test_defaults_seed_decode(self) -> None:
        defaults = QueryOptions(l=33).normalized()
        decoded = decode_query_request(
            {"dataset": "dblp", "keywords": ["x"]}, defaults=defaults
        )
        assert decoded.options.l == 33
        overridden = decode_query_request(
            {"dataset": "dblp", "keywords": ["x"], "options": {"l": 4}},
            defaults=defaults,
        )
        assert overridden.options.l == 4

    def test_error_body_shape_is_pinned(self) -> None:
        body = encode_error(RequestValidationError("bad field"), 400)
        assert body == {
            "protocol_version": PROTOCOL_VERSION,
            "error": {
                "type": "RequestValidationError",
                "message": "bad field",
                "status": 400,
            },
        }
