"""Tests for ObjectRank, ValueRank, PageRank, and the power engine."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.datasets.dblp import DBLPDataset
from repro.datasets.tpch import TPCHDataset
from repro.db.database import Database
from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.types import ColumnType
from repro.errors import ConvergenceError, RankingError
from repro.ranking.authority import (
    AuthorityRelationship,
    AuthorityTransferGraph,
    ValueFunction,
)
from repro.ranking.objectrank import compute_objectrank
from repro.ranking.pagerank import compute_pagerank
from repro.ranking.power import (
    NodeNumbering,
    build_transfer_matrix,
    power_iterate,
)
from repro.ranking.valuerank import compute_valuerank


class TestPowerIterate:
    def test_no_edges_gives_uniform_base(self) -> None:
        matrix = sparse.csr_matrix((3, 3))
        scores, _ = power_iterate(matrix, damping=0.85)
        assert np.allclose(scores, (1 - 0.85) / 3)

    def test_two_node_chain_closed_form(self) -> None:
        # Node 0 → node 1 with rate 1.  Fixpoint: s0 = b, s1 = b + d·s0,
        # where b = (1-d)/2.
        matrix = sparse.csr_matrix(([1.0], ([1], [0])), shape=(2, 2))
        d = 0.5
        scores, _ = power_iterate(matrix, damping=d, tol=1e-14)
        b = (1 - d) / 2
        assert scores[0] == pytest.approx(b, rel=1e-9)
        assert scores[1] == pytest.approx(b + d * b, rel=1e-9)

    def test_strict_raises_on_no_convergence(self) -> None:
        # Rates > 1 make the iteration grow without bound; strict mode must
        # surface that instead of silently returning the last iterate.
        matrix = sparse.csr_matrix(([2.0, 2.0], ([1, 0], [0, 1])), shape=(2, 2))
        with pytest.raises(ConvergenceError):
            power_iterate(matrix, damping=0.99, tol=1e-16, max_iterations=5, strict=True)

    def test_empty_matrix(self) -> None:
        scores, iters = power_iterate(sparse.csr_matrix((0, 0)), damping=0.85)
        assert scores.size == 0 and iters == 0


class TestAuthorityGraph:
    def test_duplicate_names_rejected(self) -> None:
        rel = AuthorityRelationship(
            name="r", kind="fk", table_a="a", table_b="b",
            column_a="x", column_b=None, rate_forward=0.1, rate_backward=0.1,
        )
        with pytest.raises(RankingError):
            AuthorityTransferGraph([rel, rel])

    def test_negative_rate_rejected(self) -> None:
        with pytest.raises(RankingError):
            AuthorityRelationship(
                name="r", kind="fk", table_a="a", table_b="b",
                column_a="x", column_b=None, rate_forward=-0.1, rate_backward=0.1,
            )

    def test_junction_requires_junction_fields(self) -> None:
        with pytest.raises(RankingError):
            AuthorityRelationship(
                name="r", kind="junction", table_a="a", table_b="b",
                column_a="x", column_b=None, rate_forward=0.1, rate_backward=0.1,
            )

    def test_uniform_rates_copy(self, dblp: DBLPDataset) -> None:
        ga2 = dblp.ga1().with_uniform_rates(0.3)
        assert all(
            r.rate_forward == 0.3 and r.rate_backward == 0.3
            for r in ga2.relationships
        )
        assert all(
            r.value_forward is None and r.value_backward is None
            for r in ga2.relationships
        )

    def test_value_function_transforms(self) -> None:
        linear = ValueFunction("t", "c", "linear")
        log = ValueFunction("t", "c", "log")
        assert linear.weight(10.0) == 10.0
        assert log.weight(0.0) == 0.0
        assert linear.weight(None) == 0.0
        assert linear.weight(-5.0) == 0.0
        with pytest.raises(RankingError):
            ValueFunction("t", "c", "bogus").weight(1.0)


class TestObjectRank:
    def test_well_cited_paper_outranks_citing_heavy_paper(self) -> None:
        """The ObjectRank motivation: citations confer authority; citing
        many papers does not."""
        db = Database()
        db.create_table(
            TableSchema(
                "paper",
                [Column("paper_id", ColumnType.INT), Column("title", ColumnType.TEXT)],
                primary_key="paper_id",
            )
        )
        db.create_table(
            TableSchema(
                "cites",
                [
                    Column("cites_id", ColumnType.INT),
                    Column("citing_id", ColumnType.INT),
                    Column("cited_id", ColumnType.INT),
                ],
                primary_key="cites_id",
                foreign_keys=[
                    ForeignKey("citing_id", "paper", "paper_id"),
                    ForeignKey("cited_id", "paper", "paper_id"),
                ],
            )
        )
        for pid in range(6):
            db.insert("paper", [pid, f"p{pid}"])
        # Paper 0 is cited by 1, 2, 3, 4; paper 5 cites 1, 2, 3, 4.
        edges = [(1, 0), (2, 0), (3, 0), (4, 0), (5, 1), (5, 2), (5, 3), (5, 4)]
        for idx, (citing, cited) in enumerate(edges):
            db.insert("cites", [idx, citing, cited])
        ga = AuthorityTransferGraph(
            [
                AuthorityRelationship(
                    name="cites", kind="junction", table_a="paper", table_b="paper",
                    column_a="citing_id", column_b="cited_id", junction="cites",
                    rate_forward=0.7, rate_backward=0.0,
                )
            ]
        )
        store = compute_objectrank(db, ga)
        scores = store.array("paper")
        assert scores[0] == max(scores)
        assert scores[5] == min(scores)

    def test_family_member_importance_is_high(
        self, dblp: DBLPDataset, dblp_store
    ) -> None:
        # Christos (author 0) is pinned to the top productivity rank, so his
        # ObjectRank should be at or near the top of the author relation.
        scores = dblp_store.array("author")
        christos = scores[dblp.db.table("author").row_id_for_pk(0)]
        assert christos >= np.percentile(scores, 95)

    def test_low_damping_flattens_scores(self, dblp: DBLPDataset) -> None:
        flat = compute_objectrank(dblp.db, dblp.ga1(), damping=0.10)
        sharp = compute_objectrank(dblp.db, dblp.ga1(), damping=0.85)
        flat_papers = flat.array("paper")
        sharp_papers = sharp.array("paper")
        assert flat_papers.std() / flat_papers.mean() < sharp_papers.std() / sharp_papers.mean()

    def test_scores_are_positive(self, dblp_store) -> None:
        for table in dblp_store.tables():
            assert (dblp_store.array(table) > 0).all()


def _mini_trading_db() -> Database:
    """Two customers: A has 3 × $100 orders, B has 5 × $10 orders."""
    db = Database()
    db.create_table(
        TableSchema(
            "customer",
            [Column("cust_id", ColumnType.INT), Column("name", ColumnType.TEXT)],
            primary_key="cust_id",
        )
    )
    db.create_table(
        TableSchema(
            "orders",
            [
                Column("order_id", ColumnType.INT),
                Column("cust_id", ColumnType.INT),
                Column("totalprice", ColumnType.FLOAT),
            ],
            primary_key="order_id",
            foreign_keys=[ForeignKey("cust_id", "customer", "cust_id")],
        )
    )
    db.insert("customer", [0, "rich"])
    db.insert("customer", [1, "busy"])
    order_id = 0
    for _ in range(3):
        db.insert("orders", [order_id, 0, 100.0])
        order_id += 1
    for _ in range(5):
        db.insert("orders", [order_id, 1, 10.0])
        order_id += 1
    return db


def _mini_trading_ga() -> AuthorityTransferGraph:
    return AuthorityTransferGraph(
        [
            AuthorityRelationship(
                name="customer_orders",
                kind="fk",
                table_a="orders",
                table_b="customer",
                column_a="cust_id",
                column_b=None,
                rate_forward=0.5,
                source_value_forward=ValueFunction("orders", "totalprice"),
                rate_backward=0.1,
                value_backward=ValueFunction("orders", "totalprice"),
            )
        ]
    )


class TestValueRank:
    def test_paper_claim_three_big_orders_beat_five_small(self) -> None:
        """Section 2.2: 'a customer with five orders of values $10 may get
        lower importance than another customer with three orders of $100'."""
        db = _mini_trading_db()
        store = compute_valuerank(db, _mini_trading_ga())
        rich, busy = store.array("customer")
        assert rich > busy

    def test_objectrank_on_same_db_prefers_many_orders(self) -> None:
        """Without values, edge counting rewards the five-order customer —
        the contrast that motivates ValueRank."""
        db = _mini_trading_db()
        store = compute_objectrank(db, _mini_trading_ga())
        rich, busy = store.array("customer")
        assert busy > rich

    def test_expensive_order_outranks_cheap_order_of_same_customer(self) -> None:
        db = _mini_trading_db()
        db.insert("orders", [100, 0, 500.0])
        db.insert("orders", [101, 0, 1.0])
        store = compute_valuerank(db, _mini_trading_ga())
        scores = store.array("orders")
        orders = db.table("orders")
        assert scores[orders.row_id_for_pk(100)] > scores[orders.row_id_for_pk(101)]

    def test_tpch_value_signal_is_positive(self, tpch: TPCHDataset) -> None:
        store = compute_valuerank(tpch.db, tpch.ga1())
        orders = tpch.db.table("orders")
        scores = store.array("orders")
        col = orders.schema.column_index("totalprice")
        prices = np.array([row[col] for _rid, row in orders.scan()])
        price_rank = np.argsort(np.argsort(prices))
        score_rank = np.argsort(np.argsort(scores))
        corr = np.corrcoef(price_rank, score_rank)[0, 1]
        # Customer importance and lineitem mix add noise, but the value
        # signal must remain clearly positive overall.
        assert corr > 0.2

    def test_ga2_neglects_values(self, tpch: TPCHDataset) -> None:
        objectrank_scores = compute_objectrank(tpch.db, tpch.ga1())
        ga2_scores = compute_valuerank(tpch.db, tpch.ga2())
        for table in ("orders", "customer"):
            assert np.allclose(
                objectrank_scores.array(table), ga2_scores.array(table)
            )


class TestPageRank:
    def test_hub_tuple_ranks_high(self, dblp: DBLPDataset) -> None:
        store = compute_pagerank(dblp.db)
        for table in store.tables():
            assert (store.array(table) >= 0).all()

    def test_empty_database(self) -> None:
        db = Database()
        db.create_table(
            TableSchema("only", [Column("id", ColumnType.INT)], primary_key="id")
        )
        db.insert("only", [1])
        store = compute_pagerank(db)
        assert store.array("only").shape == (1,)


class TestNodeNumbering:
    def test_offsets_partition_tables(self, dblp: DBLPDataset) -> None:
        numbering = NodeNumbering.for_database(dblp.db)
        seen: set[int] = set()
        for table in dblp.db.table_names:
            sl = numbering.slice_of(table)
            ids = set(range(sl.start, sl.stop))
            assert not ids & seen
            seen |= ids
        assert len(seen) == numbering.total == dblp.db.total_rows

    def test_matrix_shape(self, dblp: DBLPDataset) -> None:
        matrix, numbering = build_transfer_matrix(dblp.db, dblp.ga1())
        assert matrix.shape == (numbering.total, numbering.total)
