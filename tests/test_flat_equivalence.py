"""Property tests: the columnar flat path is exactly the legacy path.

Over randomized databases (tiny synthetic DBLP instances parameterised by a
hypothesis-drawn seed, with randomized importance scores), the columnar
pipeline — ``generate_os_flat`` + the flat size-l algorithms — must produce

* the same tree node-for-node (flat index i == legacy uid i),
* identical size-l selections and total importance as the legacy
  ``OSNode`` path across dp, bottom_up, and both top_path variants, and
* the brute-force-optimal (table, row_id) selection for small l.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brute_force import brute_force_size_l
from repro.core.bottom_up import bottom_up_size_l
from repro.core.dp import optimal_size_l
from repro.core.engine import SizeLEngine
from repro.core.options import Algorithm, QueryOptions, Source
from repro.core.top_path import top_path_size_l
from repro.datasets.dblp import DBLPConfig, generate_dblp
from repro.ranking.store import ImportanceStore

#: OSs above this size make the exponential brute-force oracle too slow.
BRUTE_FORCE_MAX_NODES = 45

ALGORITHMS = [
    ("dp", lambda tree, l: optimal_size_l(tree, l)),
    ("bottom_up", lambda tree, l: bottom_up_size_l(tree, l)),
    ("top_path", lambda tree, l: top_path_size_l(tree, l)),
    ("top_path_opt", lambda tree, l: top_path_size_l(tree, l, variant="optimized")),
]


@lru_cache(maxsize=32)
def _engine(seed: int) -> SizeLEngine:
    """A tiny randomized database + randomized importances under *seed*."""
    dataset = generate_dblp(
        DBLPConfig(
            n_authors=10,
            n_papers=16,
            n_conferences=3,
            mean_authors_per_paper=1.8,
            mean_citations_per_paper=1.5,
            seed=seed,
        )
    )
    rng = np.random.default_rng(seed * 7919 + 13)
    store = ImportanceStore(
        {
            name: rng.uniform(0.05, 10.0, len(dataset.db.table(name)))
            for name in dataset.db.table_names
        }
    )
    return SizeLEngine(
        dataset.db,
        {"author": dataset.author_gds(), "paper": dataset.paper_gds()},
        store,
    )


def _tuple_multiset(result) -> list[tuple[str, int]]:
    """Selected tuples as a (table, row_id) multiset.

    Compared at table granularity, not G_DS label: the same tuple reached
    via two labels of equal affinity (a paper as PaperCites vs PaperCitedBy)
    is an exact weight tie, and equally-optimal selections may legitimately
    differ in which occurrence they keep.
    """
    return sorted(
        (node.table, node.row_id) for node in result.summary.nodes
    )


class TestFlatEqualsLegacy:
    @settings(max_examples=40, deadline=None, database=None)
    @given(
        seed=st.integers(min_value=0, max_value=15),
        subject=st.integers(min_value=0, max_value=9),
        l=st.integers(min_value=1, max_value=6),
        rds=st.sampled_from(["author", "paper"]),
    )
    def test_flat_pipeline_matches_legacy_and_brute_force(
        self, seed: int, subject: int, l: int, rds: str  # noqa: E741
    ) -> None:
        engine = _engine(seed)
        legacy = engine.complete_os(rds, subject)
        flat = engine.complete_os_flat(rds, subject)

        # The generated tree is identical node-for-node (index == uid).
        assert flat.size == legacy.size
        for node in legacy.nodes:
            i = node.uid
            assert int(flat.row_id[i]) == node.row_id
            assert int(flat.depth[i]) == node.depth
            assert int(flat.parent[i]) == (
                -1 if node.parent is None else node.parent.uid
            )
            assert flat.gds_node(i) is node.gds
            assert float(flat.weight[i]) == pytest.approx(node.weight)

        # Identical selections and importance for every size-l algorithm.
        for name, algo in ALGORITHMS:
            legacy_result = algo(legacy, l)
            flat_result = algo(flat, l)
            assert flat_result.selected_uids == legacy_result.selected_uids, name
            assert flat_result.importance == pytest.approx(
                legacy_result.importance
            ), name
            assert _tuple_multiset(flat_result) == _tuple_multiset(
                legacy_result
            ), name

        # The flat DP stays brute-force optimal (randomized weights make the
        # optimum unique with probability 1, so the selections match too).
        if flat.size <= BRUTE_FORCE_MAX_NODES:
            brute = brute_force_size_l(legacy, l)
            flat_dp = optimal_size_l(flat, l)
            assert flat_dp.importance == pytest.approx(brute.importance)
            assert _tuple_multiset(flat_dp) == _tuple_multiset(brute)

    def test_large_l_exercises_vectorized_branches(self, dblp_engine) -> None:
        """l large enough for the vectorized DP merge (cap >= 64) and the
        vectorized top-path subtree scan (>= 256 nodes) — branches the
        small-l property test can never reach."""
        legacy = dblp_engine.complete_os("author", 0)
        flat = dblp_engine.complete_os_flat("author", 0)
        assert flat.size == legacy.size > 256
        for l in (80, 150):  # noqa: E741 - paper notation
            assert min(l, flat.size) > 64  # DP root cap crosses the threshold
            for _name, algo in ALGORITHMS:
                legacy_result = algo(legacy, l)
                flat_result = algo(flat, l)
                assert flat_result.selected_uids == legacy_result.selected_uids
                assert flat_result.importance == pytest.approx(
                    legacy_result.importance
                )

    @settings(max_examples=15, deadline=None, database=None)
    @given(
        seed=st.integers(min_value=0, max_value=7),
        l=st.integers(min_value=1, max_value=8),
    )
    def test_engine_run_flat_flag_is_transparent(
        self, seed: int, l: int  # noqa: E741
    ) -> None:
        """engine.run under flat=True/False returns identical selections."""
        engine = _engine(seed)
        base = QueryOptions(
            l=l, algorithm=Algorithm.TOP_PATH, source=Source.COMPLETE
        )
        flat_result = engine.run("author", 3, base.replace(flat=True))
        legacy_result = engine.run("author", 3, base.replace(flat=False))
        assert flat_result.selected_uids == legacy_result.selected_uids
        assert flat_result.importance == pytest.approx(legacy_result.importance)
        assert flat_result.summary.render() == legacy_result.summary.render()
