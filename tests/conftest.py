"""Shared fixtures: small datasets, rankings, engines, and tree builders."""

from __future__ import annotations

import pytest

from repro.core.engine import SizeLEngine
from repro.core.os_tree import ObjectSummary, OSNode
from repro.datasets.dblp import DBLPDataset, small_dblp
from repro.datasets.tpch import TPCHDataset, small_tpch
from repro.ranking.objectrank import compute_objectrank
from repro.ranking.valuerank import compute_valuerank
from repro.ranking.store import ImportanceStore
from repro.schema_graph.gds import GDSNode


# --------------------------------------------------------------------- #
# Datasets (session-scoped: generation is deterministic and reused)
# --------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def dblp() -> DBLPDataset:
    return small_dblp(seed=7)


@pytest.fixture(scope="session")
def dblp_store(dblp: DBLPDataset) -> ImportanceStore:
    return compute_objectrank(dblp.db, dblp.ga1())


@pytest.fixture(scope="session")
def dblp_engine(dblp: DBLPDataset, dblp_store: ImportanceStore) -> SizeLEngine:
    return SizeLEngine(
        dblp.db,
        {"author": dblp.author_gds(), "paper": dblp.paper_gds()},
        dblp_store,
    )


@pytest.fixture(scope="session")
def dblp_snapshot(dblp_engine: SizeLEngine, tmp_path_factory):
    """A snapshot of every author subject of the shared DBLP engine.

    Session-scoped (like the engine it fingerprints): writing it costs one
    full-table precompute, reused by the persistence and serving tests.
    """
    from repro.persist import Snapshot, precompute_snapshot, select_subjects

    path = tmp_path_factory.mktemp("persist") / "dblp-snapshot"
    subjects = select_subjects(dblp_engine, table="author")
    precompute_snapshot(dblp_engine, subjects, path, workers=2)
    return Snapshot.open(path)


@pytest.fixture(scope="session")
def tpch() -> TPCHDataset:
    return small_tpch(seed=11)


@pytest.fixture(scope="session")
def tpch_store(tpch: TPCHDataset) -> ImportanceStore:
    return compute_valuerank(tpch.db, tpch.ga1())


@pytest.fixture(scope="session")
def tpch_engine(tpch: TPCHDataset, tpch_store: ImportanceStore) -> SizeLEngine:
    return SizeLEngine(
        tpch.db,
        {"customer": tpch.customer_gds(), "supplier": tpch.supplier_gds()},
        tpch_store,
    )


# --------------------------------------------------------------------- #
# Synthetic OS trees (no database needed) for algorithm tests
# --------------------------------------------------------------------- #
def make_tree(structure: dict[int, list[int]], weights: dict[int, float]) -> ObjectSummary:
    """Build an ObjectSummary from ``parent_uid -> [child_uids]`` + weights.

    uid 0 is the root.  G_DS nodes are synthetic one-per-depth stubs (the
    algorithms only read weights and shape).
    """
    gds_stub = GDSNode(0, "Stub", "stub", None, None, 1.0)
    nodes: dict[int, OSNode] = {0: OSNode(0, gds_stub, 0, None, weights[0])}
    pending = [0]
    while pending:
        uid = pending.pop()
        for child_uid in structure.get(uid, []):
            child = OSNode(child_uid, gds_stub, child_uid, nodes[uid], weights[child_uid])
            nodes[uid].children.append(child)
            nodes[child_uid] = child
            pending.append(child_uid)
    return ObjectSummary(nodes[0], db=None, kind="complete")


@pytest.fixture()
def chain_tree() -> ObjectSummary:
    """0 — 1 — 2 — 3 — 4 with increasing weights at depth."""
    structure = {0: [1], 1: [2], 2: [3], 3: [4]}
    weights = {0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0, 4: 5.0}
    return make_tree(structure, weights)


@pytest.fixture()
def star_tree() -> ObjectSummary:
    """Root with five leaves of distinct weights."""
    structure = {0: [1, 2, 3, 4, 5]}
    weights = {0: 10.0, 1: 5.0, 2: 4.0, 3: 3.0, 4: 2.0, 5: 1.0}
    return make_tree(structure, weights)


@pytest.fixture()
def paper_figure4_tree() -> ObjectSummary:
    """The Figure 4 example tree (weights from the paper's node labels).

    Structure reconstructed from the DP table in the figure: depth-1
    children 2..6 of root 1; 3's children 7, 8, 9; 4's children 10, 11;
    6's child 12; 11's child 13; 12's child 14.
    """
    structure = {0: [2, 3, 4, 5, 6], 3: [7, 8, 9], 4: [10, 11], 6: [12], 11: [13], 12: [14]}
    weights = {
        0: 30.0, 2: 20.0, 3: 11.0, 4: 31.0, 5: 80.0, 6: 35.0,
        7: 10.0, 8: 15.0, 9: 5.0, 10: 13.0, 11: 30.0, 12: 12.0,
        13: 60.0, 14: 40.0,
    }
    return make_tree(structure, weights)
