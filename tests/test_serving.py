"""Tests for the concurrent serving layer.

Covers the thread-safety guarantees of :class:`SummaryCache` (single
lock-protected subject book, single-flight generation, atomic eviction
under racing threads) and the :class:`Session` fan-out
(``iter_keyword_query(workers=N)``, ``size_l_many(workers=N)``,
``ParallelConfig`` resolution, the CLI ``--workers`` flag).

The hammer tests use a barrier plus an artificially slowed generation
step so every thread is genuinely in flight at once — without the delay a
fast generation can finish before the second thread even asks, and the
single-flight path would never be exercised.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.cache import SummaryCache
from repro.core.options import ParallelConfig, QueryOptions, Source
from repro.errors import SummaryError
from repro.session import Session


def _slow(monkeypatch, engine, method: str, delay: float = 0.002):
    """Wrap an engine generation method with a short sleep + call counter."""
    original = getattr(engine, method)
    lock = threading.Lock()
    calls: list[tuple[str, int]] = []

    def wrapped(rds_table, row_id, *args, **kwargs):
        with lock:
            calls.append((rds_table, row_id))
        time.sleep(delay)
        return original(rds_table, row_id, *args, **kwargs)

    monkeypatch.setattr(engine, method, wrapped)
    return calls


class TestSingleFlight:
    def test_concurrent_same_subject_generates_once(
        self, dblp_engine, monkeypatch
    ) -> None:
        calls = _slow(monkeypatch, dblp_engine, "complete_os_flat")
        cache = SummaryCache(dblp_engine)
        n_threads = 8
        barrier = threading.Barrier(n_threads)

        def fetch():
            barrier.wait()
            return cache.complete_os_flat("author", 1)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            trees = [f.result() for f in [pool.submit(fetch) for _ in range(n_threads)]]

        assert len(calls) == 1  # one generation despite eight callers
        assert all(tree is trees[0] for tree in trees)
        stats = cache.stats()
        assert stats["tree_generations"] == 1
        assert stats["misses"] == 1
        assert stats["single_flight_waits"] + stats["hits"] == n_threads - 1

    def test_concurrent_run_coalesces_memo_computation(
        self, dblp_engine, monkeypatch
    ) -> None:
        calls = _slow(monkeypatch, dblp_engine, "run")
        cache = SummaryCache(dblp_engine)
        options = QueryOptions(l=6, source=Source.PRELIM)  # engine.run path
        n_threads = 6
        barrier = threading.Barrier(n_threads)

        def query():
            barrier.wait()
            return cache.run("author", 2, options)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            results = [
                f.result() for f in [pool.submit(query) for _ in range(n_threads)]
            ]

        assert len(calls) == 1
        assert cache.stats()["result_computations"] == 1
        # exactly one caller got the miss-result; the rest got cached copies
        cached_flags = sorted(r.stats["cached"] for r in results)
        assert cached_flags == [False] + [True] * (n_threads - 1)
        assert len({frozenset(r.selected_uids) for r in results}) == 1

    def test_leader_failure_propagates_to_waiters(
        self, dblp_engine, monkeypatch
    ) -> None:
        barrier = threading.Barrier(3)

        def exploding(rds_table, row_id, *args, **kwargs):
            time.sleep(0.005)
            raise RuntimeError("backend down")

        monkeypatch.setattr(dblp_engine, "complete_os_flat", exploding)
        cache = SummaryCache(dblp_engine)

        def fetch():
            barrier.wait()
            cache.complete_os_flat("author", 1)

        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = [pool.submit(fetch) for _ in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="backend down"):
                    future.result()
        # the failed flight is cleared: a later call retries cleanly
        monkeypatch.undo()
        assert cache.complete_os_flat("author", 1).size > 0


class TestInvalidateInFlight:
    def test_post_invalidate_caller_gets_fresh_generation(
        self, dblp_engine, monkeypatch
    ) -> None:
        """invalidate() detaches in-flight computations: a caller arriving
        after the refresh must trigger a new generation, not inherit the
        stale one (which waiters that were already blocked still receive)."""
        calls = _slow(monkeypatch, dblp_engine, "complete_os_flat", delay=0.02)
        cache = SummaryCache(dblp_engine)
        started = threading.Event()

        original = dblp_engine.complete_os_flat

        def signalling(rds_table, row_id, *args, **kwargs):
            started.set()
            return original(rds_table, row_id, *args, **kwargs)

        monkeypatch.setattr(dblp_engine, "complete_os_flat", signalling)

        with ThreadPoolExecutor(max_workers=1) as pool:
            stale = pool.submit(cache.complete_os_flat, "author", 1)
            assert started.wait(timeout=5)
            cache.invalidate()  # the leader is mid-generation right now
            fresh = cache.complete_os_flat("author", 1)  # post-invalidate
            assert stale.result().size == fresh.size
        assert len(calls) == 2  # the stale flight was not reused
        assert cache.cached_subjects == 1

    def test_scoped_invalidate_keeps_unrelated_inflight_work(
        self, dblp_engine, monkeypatch
    ) -> None:
        """invalidate('author') must not discard a concurrent in-flight
        generation for a 'paper' subject — its result still gets cached."""
        _slow(monkeypatch, dblp_engine, "complete_os_flat", delay=0.02)
        cache = SummaryCache(dblp_engine)
        started = threading.Event()
        original = dblp_engine.complete_os_flat

        def signalling(rds_table, row_id, *args, **kwargs):
            started.set()
            return original(rds_table, row_id, *args, **kwargs)

        monkeypatch.setattr(dblp_engine, "complete_os_flat", signalling)
        with ThreadPoolExecutor(max_workers=1) as pool:
            future = pool.submit(cache.complete_os_flat, "paper", 1)
            assert started.wait(timeout=5)
            cache.invalidate("author")  # scoped elsewhere, mid-generation
            tree = future.result()
        assert cache.complete_os_flat("paper", 1) is tree  # cached: a hit
        assert cache.stats()["tree_generations"] == 1

    def test_detached_leader_does_not_evict_successor_flight(
        self, dblp_engine, monkeypatch
    ) -> None:
        # the stale leader finishing late must leave the fresh result cached
        _slow(monkeypatch, dblp_engine, "complete_os_flat", delay=0.01)
        cache = SummaryCache(dblp_engine)
        with ThreadPoolExecutor(max_workers=2) as pool:
            future = pool.submit(cache.complete_os_flat, "author", 2)
            time.sleep(0.002)  # let the leader enter its flight
            cache.invalidate("author", 2)
            tree = cache.complete_os_flat("author", 2)
            future.result()
        assert cache.complete_os_flat("author", 2) is tree  # still a hit


class TestHammer:
    def test_zipfian_hammer_no_duplicate_generations(
        self, dblp_engine, monkeypatch
    ) -> None:
        """N threads x M subjects under a zipfian mix: every subject is
        generated exactly once and all threads agree on the results."""
        calls = _slow(monkeypatch, dblp_engine, "complete_os_flat", delay=0.001)
        cache = SummaryCache(dblp_engine, max_subjects=64)
        options = QueryOptions(l=8, source=Source.COMPLETE)
        subjects = list(range(6))
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        outcomes: dict[int, list[frozenset]] = {s: [] for s in subjects}
        collect = threading.Lock()

        def client(seed: int) -> None:
            rng = random.Random(seed)
            barrier.wait()
            for _ in range(30):
                # zipf-ish: low ranks dominate, tail still visited
                row = subjects[min(int(rng.paretovariate(1.2)) - 1, len(subjects) - 1)]
                result = cache.run("author", row, options)
                with collect:
                    outcomes[row].append(frozenset(result.selected_uids))

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            for future in [pool.submit(client, seed) for seed in range(n_threads)]:
                future.result()

        touched = {row for row, seen in outcomes.items() if seen}
        assert len(calls) == len(touched)  # single-flight: one generation each
        assert cache.stats()["tree_generations"] == len(touched)
        assert cache.stats()["result_computations"] == len(touched)
        for row in touched:
            assert len(set(outcomes[row])) == 1  # everyone saw the same OS

    def test_eviction_race_keeps_size_invariant(
        self, dblp_engine, monkeypatch
    ) -> None:
        """A capacity-2 cache hammered over 8 subjects: the book must never
        exceed capacity and every result must stay correct."""
        _slow(monkeypatch, dblp_engine, "complete_os_flat", delay=0.0005)
        cache = SummaryCache(dblp_engine, max_subjects=2)
        options = QueryOptions(l=5, source=Source.COMPLETE)
        reference = {
            row: frozenset(
                dblp_engine.run("author", row, options.normalized()).selected_uids
            )
            for row in range(8)
        }
        n_threads = 6
        barrier = threading.Barrier(n_threads)
        failures: list[str] = []

        def client(seed: int) -> None:
            rng = random.Random(seed)
            barrier.wait()
            for _ in range(25):
                row = rng.randrange(8)
                result = cache.run("author", row, options)
                if frozenset(result.selected_uids) != reference[row]:
                    failures.append(f"subject {row} diverged")
                if cache.cached_subjects > 2:
                    failures.append("book exceeded max_subjects")

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            for future in [pool.submit(client, seed) for seed in range(n_threads)]:
                future.result()

        assert failures == []
        assert cache.cached_subjects <= 2
        assert cache.cached_results <= 2 * 1  # one memo key per subject


class TestParallelKeywordQuery:
    def test_workers_yield_same_results_as_serial(self, dblp_engine) -> None:
        session = Session(dblp_engine)
        serial = session.keyword_query("Faloutsos", l=7)
        parallel = session.keyword_query("Faloutsos", l=7, workers=4)
        assert [e.match.row_id for e in parallel] == [e.match.row_id for e in serial]
        assert [e.result.selected_uids for e in parallel] == [
            e.result.selected_uids for e in serial
        ]

    def test_unordered_yields_same_result_set(self, dblp_engine) -> None:
        session = Session(dblp_engine)
        serial = session.keyword_query("Faloutsos", l=7)
        unordered = session.keyword_query(
            "Faloutsos", l=7, workers=4, ordered=False
        )
        assert {e.match.row_id for e in unordered} == {
            e.match.row_id for e in serial
        }
        by_row = {e.match.row_id: e.result.selected_uids for e in serial}
        for entry in unordered:
            assert entry.result.selected_uids == by_row[entry.match.row_id]

    def test_parallel_stream_is_a_lazy_iterator(self, dblp_engine) -> None:
        session = Session(dblp_engine)
        stream = session.iter_keyword_query("Faloutsos", l=5, workers=4)
        first = next(stream)
        assert first.result.size == 5
        stream.close()  # abandoning the stream must not hang the pool

    def test_parallel_options_validated_eagerly(self, dblp_engine) -> None:
        session = Session(dblp_engine)
        with pytest.raises(SummaryError, match="unknown algorithm"):
            session.iter_keyword_query(
                "Faloutsos", options=QueryOptions(algorithm="magic"), workers=4
            )
        with pytest.raises(SummaryError, match="workers must be"):
            session.iter_keyword_query("Faloutsos", workers=0)

    def test_size_l_many_parallel_preserves_input_order(self, dblp_engine) -> None:
        session = Session(dblp_engine)
        subjects = [("author", 2), ("author", 0), ("author", 1), ("author", 0)]
        serial = session.size_l_many(subjects, l=5)
        parallel = Session(dblp_engine).size_l_many(subjects, l=5, workers=4)
        assert [r.selected_uids for r in parallel] == [
            r.selected_uids for r in serial
        ]

    def test_session_pool_is_reused_across_queries(self, dblp_engine) -> None:
        session = Session(dblp_engine)
        session.keyword_query("Faloutsos", l=5, workers=4)
        pool = session._pool
        assert pool is not None
        session.keyword_query("Faloutsos", l=6, workers=2)
        assert session._pool is pool  # no per-query spawn/teardown
        session.keyword_query("Faloutsos", l=7, workers=8)
        assert session._pool is not pool  # grown for the larger fan-out

    def test_concurrent_queries_survive_pool_growth(self, dblp_engine) -> None:
        """One client growing the pool must not break another client's
        in-flight submissions (the swap retires the old executor)."""
        session = Session(dblp_engine)
        barrier = threading.Barrier(6)

        def client(workers: int) -> int:
            barrier.wait()
            return len(session.keyword_query("Faloutsos", l=5, workers=workers))

        with ThreadPoolExecutor(max_workers=6) as pool:
            counts = [
                f.result()
                for f in [
                    pool.submit(client, workers)
                    for workers in (2, 8, 3, 6, 2, 8)
                ]
            ]
        assert counts == [3] * 6

    def test_workers_still_throttle_after_pool_growth(
        self, dblp_engine, monkeypatch
    ) -> None:
        """workers= is a per-call concurrency contract: a workers=2 call
        must not run 8-wide just because an earlier call grew the pool."""
        session = Session(dblp_engine)
        session.keyword_query("Faloutsos", l=5, workers=8)  # grow the pool
        active = 0
        peak = 0
        gauge = threading.Lock()
        original = session.cache.run

        def tracking(rds_table, row_id, opts):
            nonlocal active, peak
            with gauge:
                active += 1
                peak = max(peak, active)
            try:
                time.sleep(0.003)
                return original(rds_table, row_id, opts)
            finally:
                with gauge:
                    active -= 1

        monkeypatch.setattr(session.cache, "run", tracking)
        session.size_l_many([("author", i) for i in range(8)], l=4, workers=2)
        assert peak <= 2
        peak = 0
        list(session.iter_keyword_query("Faloutsos", l=6, workers=2))
        assert peak <= 2

    def test_window_refills_behind_a_slow_head(
        self, dblp_engine, monkeypatch
    ) -> None:
        """The window refills on ANY completion: one slow head-of-line
        subject must not reduce the call to serial execution."""
        session = Session(dblp_engine)
        original = session.cache.run
        start_times: dict[int, float] = {}
        slow_done_at = [float("inf")]
        record = threading.Lock()

        def tracking(rds_table, row_id, opts):
            with record:
                start_times[row_id] = time.perf_counter()
            result = original(rds_table, row_id, opts)
            if row_id == 0:
                time.sleep(0.05)
                slow_done_at[0] = time.perf_counter()
            return result

        monkeypatch.setattr(session.cache, "run", tracking)
        subjects = [("author", row) for row in range(6)]  # 0 is the slow head
        results = session.size_l_many(subjects, l=4, workers=2)
        assert len(results) == 6
        # every later subject started while the slow head was still running
        assert all(
            start_times[row] < slow_done_at[0] for row in range(1, 6)
        ), (start_times, slow_done_at)

    def test_keyword_query_deprecation_points_at_caller(self, dblp_engine) -> None:
        import warnings

        session = Session(dblp_engine)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session.keyword_query("Faloutsos", l=5, algorithm="dp")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations
        assert deprecations[0].filename == __file__  # not session.py

    def test_session_close_is_idempotent_and_recoverable(self, dblp_engine) -> None:
        with Session(dblp_engine) as session:
            assert session.keyword_query("Faloutsos", l=5, workers=4)
        assert session._pool is None
        session.close()  # idempotent
        # a closed Session grows a fresh pool on the next parallel call
        assert len(session.keyword_query("Faloutsos", l=6, workers=4)) == 3

    def test_parallel_config_resolution_order(self, dblp_engine) -> None:
        session = Session(dblp_engine, parallel=ParallelConfig(workers=2))
        assert session.parallel.workers == 2
        opts = QueryOptions(parallel=ParallelConfig(workers=3, ordered=False))
        resolved = session._parallel_config(opts.normalized(), None, None)
        assert resolved.workers == 3 and resolved.ordered is False
        resolved = session._parallel_config(opts.normalized(), 5, True)
        assert resolved.workers == 5 and resolved.ordered is True
        assert session.describe()["parallel"] == {"workers": 2, "ordered": True}


class TestParallelConfigValidation:
    def test_bad_workers(self) -> None:
        for bad in (0, -1, 1.5, True, "four"):
            with pytest.raises(SummaryError, match="workers must be"):
                ParallelConfig(workers=bad).normalized()  # type: ignore[arg-type]

    def test_bad_ordered(self) -> None:
        with pytest.raises(SummaryError, match="ordered must be"):
            ParallelConfig(ordered=1).normalized()  # type: ignore[arg-type]

    def test_bad_parallel_on_options(self) -> None:
        with pytest.raises(SummaryError, match="parallel must be"):
            QueryOptions(parallel="four").normalized()  # type: ignore[arg-type]

    def test_default_is_serial_ordered(self) -> None:
        config = ParallelConfig().normalized()
        assert config.workers == 1 and config.ordered is True


class TestDiskTierConcurrency:
    """The snapshot (disk) tier under the same hammer patterns as memory.

    A memory-evicted subject must be re-served from the snapshot — once,
    no matter how many threads ask (single-flight covers the disk load) —
    and ``invalidate()`` must mask the disk entry so racing readers can
    never resurrect a stale tree.
    """

    def _counting_snapshot(self, monkeypatch, snapshot, delay: float = 0.002):
        """Wrap snapshot.load_flat with a call counter + slowdown."""
        original = snapshot.load_flat
        lock = threading.Lock()
        calls: list[tuple[str, int]] = []

        def wrapped(rds_table, row_id, *args, **kwargs):
            with lock:
                calls.append((rds_table, row_id))
            time.sleep(delay)
            return original(rds_table, row_id, *args, **kwargs)

        monkeypatch.setattr(snapshot, "load_flat", wrapped)
        return calls

    def test_concurrent_disk_loads_are_single_flight(
        self, dblp_engine, dblp_snapshot, monkeypatch
    ) -> None:
        loads = self._counting_snapshot(monkeypatch, dblp_snapshot)
        cache = SummaryCache(dblp_engine, snapshot=dblp_snapshot)
        n_threads = 8
        barrier = threading.Barrier(n_threads)

        def fetch():
            barrier.wait()
            return cache.complete_os_flat("author", 1)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            trees = [f.result() for f in [pool.submit(fetch) for _ in range(n_threads)]]

        assert len(loads) == 1  # one disk load despite eight callers
        assert all(tree is trees[0] for tree in trees)
        stats = cache.stats()
        assert stats["disk_hits"] == 1
        assert stats["tree_generations"] == 0

    def test_evicted_subject_reserved_from_disk_not_regenerated(
        self, dblp_engine, dblp_snapshot, monkeypatch
    ) -> None:
        generations = _slow(monkeypatch, dblp_engine, "complete_os_flat")
        loads = self._counting_snapshot(monkeypatch, dblp_snapshot, delay=0.001)
        cache = SummaryCache(dblp_engine, max_subjects=1, snapshot=dblp_snapshot)
        options = QueryOptions(l=6, source=Source.COMPLETE)

        cache.run("author", 1, options)
        cache.run("author", 2, options)  # capacity 1: evicts subject 1
        assert cache.stats()["evictions"] == 1

        n_threads = 6
        barrier = threading.Barrier(n_threads)

        def hammer():
            barrier.wait()
            return cache.run("author", 1, options)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            results = [
                f.result() for f in [pool.submit(hammer) for _ in range(n_threads)]
            ]

        assert generations == []  # every serve came off the snapshot
        assert loads.count(("author", 1)) == 2  # initial + post-eviction
        assert cache.stats()["disk_hits"] == 3  # subjects 1, 2, 1-again
        assert len({frozenset(r.selected_uids) for r in results}) == 1

    def test_invalidate_masks_disk_entry_under_concurrency(
        self, dblp_engine, dblp_snapshot, monkeypatch
    ) -> None:
        generations = _slow(monkeypatch, dblp_engine, "complete_os_flat")
        cache = SummaryCache(dblp_engine, snapshot=dblp_snapshot)
        cache.complete_os_flat("author", 3)
        assert cache.stats()["disk_hits"] == 1

        cache.invalidate("author", 3)
        n_threads = 6
        barrier = threading.Barrier(n_threads)

        def fetch():
            barrier.wait()
            return cache.complete_os_flat("author", 3)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            trees = [f.result() for f in [pool.submit(fetch) for _ in range(n_threads)]]

        # the masked entry was never re-served: exactly one real generation
        assert len(generations) == 1
        stats = cache.stats()
        assert stats["snapshot_stale"] == 1
        assert stats["disk_hits"] == 1  # unchanged from before the invalidate
        assert all(tree is trees[0] for tree in trees)
        # a scoped invalidate elsewhere leaves other disk entries servable
        cache.invalidate("paper")
        cache.complete_os_flat("author", 4)
        assert cache.stats()["disk_hits"] == 2

    def test_snapshot_false_caller_never_joins_a_disk_load_flight(
        self, dblp_engine, dblp_snapshot, monkeypatch
    ) -> None:
        """QueryOptions(snapshot=False) promises a fresh generation on a
        miss; a concurrent default-options leader mid-disk-load must not
        hand its snapshot tree to the opted-out caller (the disk flag is
        part of the single-flight key)."""
        generations = _slow(monkeypatch, dblp_engine, "complete_os_flat")
        cache = SummaryCache(dblp_engine, snapshot=dblp_snapshot)
        in_disk_load = threading.Event()
        release_disk_load = threading.Event()
        original = dblp_snapshot.load_flat

        def gated(rds_table, row_id, *args, **kwargs):
            in_disk_load.set()
            release_disk_load.wait(timeout=5)
            return original(rds_table, row_id, *args, **kwargs)

        monkeypatch.setattr(dblp_snapshot, "load_flat", gated)
        with ThreadPoolExecutor(max_workers=2) as pool:
            leader = pool.submit(cache.complete_os_flat, "author", 5)
            assert in_disk_load.wait(timeout=5)
            # the leader is inside its disk load right now
            opted_out = pool.submit(
                lambda: cache.complete_os_flat("author", 5, snapshot=False)
            )
            fresh = opted_out.result(timeout=5)  # must not block on the leader
            release_disk_load.set()
            disk_tree = leader.result(timeout=5)
        assert len(generations) == 1  # the opted-out caller generated
        assert fresh is not disk_tree
        stats = cache.stats()
        assert stats["disk_hits"] == 1 and stats["tree_generations"] == 1

    def test_snapshot_false_run_never_joins_a_disk_derived_result_flight(
        self, dblp_engine, dblp_snapshot, monkeypatch
    ) -> None:
        """The result-level single-flight must split on the snapshot flag
        too: a run(snapshot=False) arriving while a default-options leader
        computes from the disk tree must run its own live pipeline."""
        generations = _slow(monkeypatch, dblp_engine, "complete_os_flat")
        cache = SummaryCache(dblp_engine, snapshot=dblp_snapshot)
        in_disk_load = threading.Event()
        release = threading.Event()
        original = dblp_snapshot.load_flat

        def gated(rds_table, row_id, *args, **kwargs):
            in_disk_load.set()
            release.wait(timeout=5)
            return original(rds_table, row_id, *args, **kwargs)

        monkeypatch.setattr(dblp_snapshot, "load_flat", gated)
        options = QueryOptions(l=6, source=Source.COMPLETE).normalized()
        opted_out = options.replace(snapshot=False).normalized()
        with ThreadPoolExecutor(max_workers=2) as pool:
            leader = pool.submit(cache.run, "author", 6, options)
            assert in_disk_load.wait(timeout=5)
            fresh = pool.submit(cache.run, "author", 6, opted_out).result(timeout=5)
            release.set()
            from_disk = leader.result(timeout=5)
        assert len(generations) == 1  # the opted-out run regenerated
        assert fresh.selected_uids == from_disk.selected_uids  # same answer
        stats = cache.stats()
        assert stats["result_computations"] == 2  # two independent pipelines
        assert stats["tree_generations"] == 1 and stats["disk_hits"] == 1

    def test_zipfian_hammer_disk_tier_no_duplicate_loads(
        self, dblp_engine, dblp_snapshot, monkeypatch
    ) -> None:
        generations = _slow(monkeypatch, dblp_engine, "complete_os_flat")
        loads = self._counting_snapshot(monkeypatch, dblp_snapshot, delay=0.001)
        cache = SummaryCache(dblp_engine, max_subjects=64, snapshot=dblp_snapshot)
        options = QueryOptions(l=8, source=Source.COMPLETE)
        subjects = list(range(6))
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        outcomes: dict[int, list[frozenset]] = {s: [] for s in subjects}
        collect = threading.Lock()

        def client(seed: int) -> None:
            rng = random.Random(seed)
            barrier.wait()
            for _ in range(30):
                row = subjects[min(int(rng.paretovariate(1.2)) - 1, len(subjects) - 1)]
                result = cache.run("author", row, options)
                with collect:
                    outcomes[row].append(frozenset(result.selected_uids))

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            for future in [pool.submit(client, seed) for seed in range(n_threads)]:
                future.result()

        touched = {row for row, seen in outcomes.items() if seen}
        assert generations == []  # the snapshot covered every subject
        assert len(loads) == len(touched)  # single-flight on the disk tier
        assert cache.stats()["disk_hits"] == len(touched)
        for row in touched:
            assert len(set(outcomes[row])) == 1


class TestCLIWorkers:
    def test_query_with_workers_flag(self, capsys) -> None:
        from repro.cli import main

        code = main(
            [
                "query",
                "--keywords",
                "Faloutsos",
                "--l",
                "5",
                "--workers",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("--- result") == 3

    def test_query_unordered_same_result_set(self, capsys) -> None:
        from repro.cli import main

        assert main(["query", "--keywords", "Faloutsos", "--l", "5"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(
                [
                    "query",
                    "--keywords",
                    "Faloutsos",
                    "--l",
                    "5",
                    "--workers",
                    "4",
                    "--unordered",
                ]
            )
            == 0
        )
        unordered = capsys.readouterr().out
        assert unordered.count("--- result") == serial.count("--- result")

    def test_bad_workers_value_is_a_usage_error(self, capsys) -> None:
        from repro.cli import main

        code = main(["query", "--keywords", "x", "--workers", "0"])
        assert code == 2
        assert "workers must be" in capsys.readouterr().err


class TestCacheStatsType:
    """The typed CacheStats satellite: attributes, as_dict, deprecation shim."""

    def test_stats_is_typed_and_frozen(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        cache.complete_os_flat("author", 1)
        stats = cache.stats()
        from repro.core.cache import CacheStats

        assert isinstance(stats, CacheStats)
        assert stats.misses == 1 and stats.tree_generations == 1
        with pytest.raises(AttributeError):
            stats.misses = 5  # frozen: a reading, not a live view

    def test_as_dict_matches_attributes(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        cache.complete_os_flat("author", 1)
        as_dict = cache.stats().as_dict()
        assert as_dict["misses"] == 1
        assert set(as_dict) == {
            "hits", "misses", "cached_subjects", "cached_results",
            "tree_generations", "result_computations", "single_flight_waits",
            "lock_contention", "evictions", "disk_hits", "disk_misses",
            "snapshot_stale", "pool_hits", "pool_misses", "pool_evictions",
        }
        assert all(isinstance(v, int) for v in as_dict.values())

    def test_string_indexing_warns_but_works(self, dblp_engine) -> None:
        stats = SummaryCache(dblp_engine).stats()
        with pytest.warns(DeprecationWarning, match="stats.hits"):
            assert stats["hits"] == stats.hits
        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError):
                stats["not_a_counter"]

    def test_dict_equality_both_ways(self, dblp_engine) -> None:
        stats = SummaryCache(dblp_engine).stats()
        assert stats == stats.as_dict()
        assert stats.as_dict() == stats

    def test_derived_rates(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        cache.complete_os_flat("author", 1)
        cache.complete_os_flat("author", 1)
        stats = cache.stats()
        assert stats.requests == 2
        assert stats.hit_rate == pytest.approx(0.5)


class TestCloseLifecycle:
    """Session.close(): idempotent, and in-flight fan-outs drain."""

    def test_double_close_is_noop(self, dblp_engine) -> None:
        session = Session(dblp_engine)
        session.size_l_many([("author", 0), ("author", 1)], 5, workers=2)
        session.close()
        assert session._pool is None
        session.close()  # second close: no pool, no error
        assert session._pool is None

    def test_close_without_ever_using_the_pool(self, dblp_engine) -> None:
        session = Session(dblp_engine)
        session.close()
        session.close()

    def test_close_while_fanout_in_flight_drains(
        self, dblp_engine, monkeypatch
    ) -> None:
        """A barrier holds two generations mid-flight while another thread
        closes the Session: every result must still arrive (no
        'cannot schedule new futures after shutdown'), and the second
        close must be a no-op."""
        in_flight = threading.Barrier(3, timeout=10)  # 2 workers + closer
        original = dblp_engine.complete_os_flat
        call_count = itertools.count()

        def gated(rds_table, row_id, *args, **kwargs):
            # exactly the first two generations hold the barrier (counter,
            # not a flag: a worker looping around before the closer flips
            # a flag would re-enter the auto-resetting barrier and strand)
            if next(call_count) < 2:
                in_flight.wait()
            return original(rds_table, row_id, *args, **kwargs)

        monkeypatch.setattr(dblp_engine, "complete_os_flat", gated)
        session = Session(dblp_engine)
        subjects = [("author", row) for row in range(6)]
        options = QueryOptions(l=5, source=Source.COMPLETE)
        results: list = []
        errors: list[BaseException] = []

        def consume() -> None:
            try:
                results.extend(
                    session.size_l_many(subjects, options=options, workers=2)
                )
            except BaseException as exc:  # pragma: no cover - the regression
                errors.append(exc)

        consumer = threading.Thread(target=consume)
        consumer.start()
        in_flight.wait()  # two generations are genuinely in flight now
        session.close()  # drains; must not break the running fan-out
        session.close()  # idempotent mid-stream too
        consumer.join(timeout=10)
        assert not consumer.is_alive()
        assert errors == []
        assert len(results) == len(subjects)
        expected = [
            dblp_engine.run(table, row, options.normalized())
            for table, row in subjects
        ]
        assert [r.selected_uids for r in results] == [
            e.selected_uids for e in expected
        ]

    def test_fanout_after_close_grows_a_fresh_pool(self, dblp_engine) -> None:
        session = Session(dblp_engine)
        session.size_l_many([("author", 0)], 5, workers=2)
        session.close()
        results = session.size_l_many(
            [("author", 1), ("author", 2)], 5, workers=2
        )
        assert len(results) == 2
        session.close()

    def test_submit_degrades_inline_when_executor_refuses(
        self, dblp_engine, monkeypatch
    ) -> None:
        """The drain guarantee's last line: if the executor itself refuses
        the task (shutdown flag set underneath us), the call runs inline
        instead of raising through the stream."""
        session = Session(dblp_engine)
        session.size_l_many([("author", 0)], 5, workers=2)  # grow the pool

        class Refusing:
            def submit(self, fn, *args):
                raise RuntimeError("cannot schedule new futures after shutdown")

            def shutdown(self, wait=True):
                pass

        monkeypatch.setattr(session, "_pool", Refusing())
        monkeypatch.setattr(session, "_pool_workers", 8)
        results = session.size_l_many(
            [("author", 1), ("author", 2)], 5, workers=2
        )
        assert [r.size for r in results] == [5, 5]
