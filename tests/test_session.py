"""Tests for the Session facade: integrated caching, streaming
iter_keyword_query laziness, batched size_l_many, and the uniform
``l >= 1`` validation across every entry point."""

from __future__ import annotations

import pytest

from repro.core.cache import SummaryCache
from repro.core.options import Algorithm, QueryOptions, Source
from repro.errors import InvalidSizeError, SummaryError
from repro.session import Session


@pytest.fixture
def session(dblp_engine) -> Session:
    return Session(dblp_engine)


class TestSessionBasics:
    def test_from_dataset(self, dblp) -> None:
        session = Session.from_dataset(dblp)
        results = session.keyword_query("Faloutsos", l=5)
        assert len(results) == 3

    def test_size_l_is_cached(self, session: Session) -> None:
        first = session.size_l("author", 1, l=8)
        second = session.size_l("author", 1, l=8)
        # hits are per-call copies sharing the payload; the first caller's
        # miss-result keeps cached=False
        assert second.summary is first.summary
        assert second.selected_uids == first.selected_uids
        assert second.stats["cached"] is True
        assert first.stats["cached"] is False
        assert session.cache_stats()["hits"] >= 1

    def test_size_l_many(self, session: Session) -> None:
        results = session.size_l_many([("author", 0), ("author", 1)], l=5)
        assert len(results) == 2
        assert all(r.size == 5 for r in results)

    def test_defaults_seed_queries(self, dblp_engine) -> None:
        session = Session(
            dblp_engine,
            defaults=QueryOptions(l=4, algorithm=Algorithm.BOTTOM_UP),
        )
        result = session.size_l("author", 0)
        assert result.size == 4
        assert result.algorithm == "bottom_up"

    def test_describe_includes_cache_and_defaults(self, session: Session) -> None:
        info = session.describe()
        assert info["cache"] == session.cache_stats()
        assert info["defaults"]["algorithm"] == "top_path"

    def test_invalidate(self, session: Session) -> None:
        session.size_l("author", 1, l=5)
        session.invalidate()
        assert session.cache_stats()["cached_subjects"] == 0

    def test_keyword_query_results_cached_across_calls(
        self, session: Session
    ) -> None:
        first = session.keyword_query("Faloutsos", l=6)
        before = session.cache_stats()["misses"]
        second = session.keyword_query("Faloutsos", l=6)
        assert session.cache_stats()["misses"] == before
        assert [a.result.selected_uids for a in first] == [
            b.result.selected_uids for b in second
        ]
        assert all(b.result.stats["cached"] for b in second)


class TestStreamingLaziness:
    def test_first_result_before_later_os_generated(self, dblp_engine) -> None:
        session = Session(dblp_engine)
        computed: list[tuple[str, int]] = []
        original = session.cache.run

        def counting_run(rds_table, row_id, options):
            computed.append((rds_table, row_id))
            return original(rds_table, row_id, options)

        session.cache.run = counting_run  # type: ignore[method-assign]
        stream = session.iter_keyword_query("Faloutsos", l=5)
        assert computed == []  # nothing computed until consumed
        first = next(stream)
        assert first.result.size == 5
        assert len(computed) == 1  # later OSs not yet generated
        rest = list(stream)
        assert len(computed) == 1 + len(rest)

    def test_engine_iterator_is_also_lazy(self, dblp_engine) -> None:
        computed: list[int] = []
        original = dblp_engine.run

        def counting_run(rds_table, row_id, options):
            computed.append(row_id)
            return original(rds_table, row_id, options)

        dblp_engine.run = counting_run  # type: ignore[method-assign]
        try:
            stream = dblp_engine.iter_keyword_query("Faloutsos", l=5)
            next(stream)
            assert len(computed) == 1
        finally:
            del dblp_engine.run

    def test_options_validated_eagerly(self, session: Session) -> None:
        # the error surfaces at call time, not on first next()
        with pytest.raises(SummaryError, match="unknown algorithm"):
            session.iter_keyword_query("Faloutsos", algorithm="magic")

    def test_batch_equals_stream(self, session: Session) -> None:
        batch = session.keyword_query("Faloutsos", l=7)
        stream = list(session.iter_keyword_query("Faloutsos", l=7))
        assert [b.match.row_id for b in batch] == [s.match.row_id for s in stream]


class TestValidationBeforeGeneration:
    """A bad algorithm name must never cost an OS generation (the old
    SummaryCache.size_l generated the complete OS before validating)."""

    def test_cache_validates_before_generating(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        generated: list[tuple[str, int]] = []
        original = dblp_engine.complete_os

        def counting_complete_os(rds_table, row_id, *args, **kwargs):
            generated.append((rds_table, row_id))
            return original(rds_table, row_id, *args, **kwargs)

        dblp_engine.complete_os = counting_complete_os  # type: ignore[method-assign]
        try:
            with pytest.raises(SummaryError, match="unknown algorithm"):
                cache.size_l("author", 1, 5, algorithm="magic")
            assert generated == []
        finally:
            del dblp_engine.complete_os

    def test_session_validates_before_generating(self, dblp_engine) -> None:
        session = Session(dblp_engine)
        with pytest.raises(SummaryError, match="unknown backend"):
            session.size_l("author", 1, options=QueryOptions(backend="tape"))


class TestUniformLValidation:
    """`l >= 1` raises the same InvalidSizeError message everywhere."""

    MESSAGE = "positive integer"

    def test_engine_size_l(self, dblp_engine) -> None:
        with pytest.raises(InvalidSizeError, match=self.MESSAGE):
            dblp_engine.size_l("author", 0, l=0)

    def test_engine_prelim_os(self, dblp_engine) -> None:
        with pytest.raises(InvalidSizeError, match=self.MESSAGE):
            dblp_engine.prelim_os("author", 0, l=0)

    def test_engine_keyword_query(self, dblp_engine) -> None:
        with pytest.raises(InvalidSizeError, match=self.MESSAGE):
            dblp_engine.keyword_query("Faloutsos", l=-2)

    def test_session_size_l(self, session: Session) -> None:
        with pytest.raises(InvalidSizeError, match=self.MESSAGE):
            session.size_l("author", 0, l=0)

    def test_session_iter_keyword_query(self, session: Session) -> None:
        with pytest.raises(InvalidSizeError, match=self.MESSAGE):
            session.iter_keyword_query("Faloutsos", l=0)

    def test_cache_size_l(self, dblp_engine) -> None:
        with pytest.raises(InvalidSizeError, match=self.MESSAGE):
            SummaryCache(dblp_engine).size_l("author", 0, 0)

    def test_cli_query(self, capsys) -> None:
        from repro.cli import main

        code = main(["query", "--keywords", "x", "--l", "0"])
        assert code == 2
        assert "positive integer" in capsys.readouterr().err


class TestCacheBounds:
    def test_prelim_results_bounded_by_max_subjects(self, dblp_engine) -> None:
        # prelim-path results never cache a complete tree; the unified
        # subject book must still bound them (they used to accumulate
        # forever in a separate, unbounded memo store)
        session = Session(dblp_engine, cache_size=2)
        for row_id in range(5):
            session.size_l("author", row_id, l=3)  # default source=prelim
        assert session.cache.cached_subjects <= 2
        assert session.cache.cached_results <= 2

    def test_depth_limit_honoured_for_prelim_source(self, dblp_engine) -> None:
        limited = dblp_engine.size_l(
            "author",
            0,
            options=QueryOptions(l=3, source=Source.PRELIM, depth_limit=0),
        )
        free = dblp_engine.size_l(
            "author", 0, options=QueryOptions(l=3, source=Source.PRELIM)
        )
        assert limited.stats["initial_os_size"] < free.stats["initial_os_size"]


class TestDeprecationShims:
    def test_legacy_positional_algorithm_still_works(self, dblp_engine) -> None:
        # pre-QueryOptions signature: size_l(table, row, l, "dp")
        with pytest.warns(DeprecationWarning):
            result = dblp_engine.size_l("author", 0, 6, "dp")
        assert result.algorithm == "dp" and result.size == 6

    def test_non_queryoptions_options_rejected_clearly(self, dblp_engine) -> None:
        with pytest.raises(SummaryError, match="must be a QueryOptions"):
            dblp_engine.size_l("author", 0, options=42)  # type: ignore[arg-type]

    def test_engine_string_kwargs_warn_but_work(self, dblp_engine) -> None:
        with pytest.warns(DeprecationWarning):
            result = dblp_engine.size_l(
                "author", 0, l=6, algorithm="dp", source="complete"
            )
        typed = dblp_engine.size_l(
            "author",
            0,
            options=QueryOptions(
                l=6, algorithm=Algorithm.DP, source=Source.COMPLETE
            ),
        )
        assert result.selected_uids == typed.selected_uids

    def test_session_string_kwargs_warn_but_work(self, session: Session) -> None:
        with pytest.warns(DeprecationWarning):
            results = session.keyword_query("Faloutsos", l=5, algorithm="top_path")
        assert len(results) == 3

    def test_options_and_legacy_kwargs_conflict(self, dblp_engine) -> None:
        with pytest.raises(SummaryError, match="not both"):
            dblp_engine.size_l(
                "author", 0, options=QueryOptions(), algorithm="dp"
            )
