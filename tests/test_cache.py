"""Tests for the summary cache (Section 7 pre-computation direction).

Includes the regression tests for the cache-correctness sweep:

* hits return per-call results — the memoised object (and the first
  caller's miss-result) keeps ``cached=False``;
* ``invalidate(row_id=...)`` without a table raises instead of silently
  clearing everything;
* subject eviction is atomic — a subject's memos and trees leave together
  (the old three-``OrderedDict`` layout let the books drift apart);
* ``cached_subjects`` counts memo-only subjects too, with
  ``cached_results`` exposed separately.
"""

from __future__ import annotations

import pytest

from repro.core.cache import SummaryCache
from repro.core.options import QueryOptions, Source
from repro.errors import SummaryError


class TestCompleteOSCache:
    def test_second_fetch_is_a_hit_and_same_object(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        first = cache.complete_os("author", 1)
        second = cache.complete_os("author", 1)
        assert first is second
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["cached_subjects"] == 1
        assert stats["tree_generations"] == 1

    def test_lru_eviction(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine, max_subjects=2)
        a = cache.complete_os("author", 1)
        cache.complete_os("author", 2)
        cache.complete_os("author", 3)  # evicts subject 1
        assert cache.cached_subjects == 2
        assert cache.stats()["evictions"] == 1
        again = cache.complete_os("author", 1)
        assert again is not a  # regenerated after eviction

    def test_touch_refreshes_lru_order(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine, max_subjects=2)
        a = cache.complete_os("author", 1)
        cache.complete_os("author", 2)
        cache.complete_os("author", 1)  # touch 1: now 2 is the LRU entry
        cache.complete_os("author", 3)  # evicts 2, keeps 1
        assert cache.complete_os("author", 1) is a

    def test_flat_and_legacy_share_one_subject_slot(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine, max_subjects=2)
        cache.complete_os("author", 1)
        cache.complete_os_flat("author", 1)
        assert cache.cached_subjects == 1

    def test_bad_capacity(self, dblp_engine) -> None:
        with pytest.raises(ValueError):
            SummaryCache(dblp_engine, max_subjects=0)


class TestSizeLMemo:
    def test_memoised_result_equivalent_not_shared(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        first = cache.size_l("author", 1, 10)
        second = cache.size_l("author", 1, 10)
        # hits are per-call copies: same payload, fresh stats record
        assert second is not first
        assert second.summary is first.summary
        assert second.selected_uids == first.selected_uids
        assert second.importance == first.importance
        assert cache.stats()["result_computations"] == 1

    def test_hit_does_not_mutate_the_miss_result(self, dblp_engine) -> None:
        # The old cache set ``cached = True`` on the *shared* memo object,
        # retroactively flipping the first caller's miss-result.
        cache = SummaryCache(dblp_engine)
        first = cache.size_l("author", 1, 10)
        assert first.stats["cached"] is False
        second = cache.size_l("author", 1, 10)
        assert second.stats["cached"] is True
        assert first.stats["cached"] is False  # the original must not flip
        third = cache.size_l("author", 1, 10)
        assert third.stats["cached"] is True
        assert third is not second

    def test_results_match_engine(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        cached = cache.size_l("author", 1, 10, algorithm="dp")
        direct = dblp_engine.size_l("author", 1, 10, algorithm="dp")
        assert cached.selected_uids == direct.selected_uids
        assert cached.importance == pytest.approx(direct.importance)

    def test_distinct_l_and_algorithms_cached_separately(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        a = cache.size_l("author", 1, 5)
        b = cache.size_l("author", 1, 10)
        c = cache.size_l("author", 1, 5, algorithm="bottom_up")
        assert a is not b and a is not c
        assert cache.cached_results == 3

    def test_unknown_algorithm(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        with pytest.raises(SummaryError):
            cache.size_l("author", 1, 5, algorithm="magic")

    def test_eviction_drops_memoised_results(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine, max_subjects=1)
        first = cache.size_l("author", 1, 5)
        cache.size_l("author", 2, 5)  # evicts subject 1 with its results
        again = cache.size_l("author", 1, 5)
        assert again is not first
        assert again.stats["cached"] is False  # recomputed, not served


class TestAtomicEviction:
    """The unified subject-level LRU: memos and trees live and die together.

    The old layout kept ``_results`` in its own ``OrderedDict`` whose LRU
    order could drift from the tree stores (``_cached_tree`` inserted via
    ``setdefault`` without ``move_to_end``), so eviction could drop a
    freshly-touched subject's memos while its tree survived.
    """

    def test_memo_survives_while_tree_keeps_subject_fresh(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine, max_subjects=2)
        cache.size_l("author", 1, 5)  # subject 1: tree + memo
        cache.size_l("author", 2, 5)  # subject 2: tree + memo
        cache.complete_os("author", 1)  # touch subject 1 via its *tree*
        cache.size_l("author", 3, 5)  # evicts subject 2, not 1
        # subject 1's memo must still be served from cache
        again = cache.size_l("author", 1, 5)
        assert again.stats["cached"] is True
        assert cache.stats()["result_computations"] == 3  # subjects 1, 2, 3

    def test_no_subject_outlives_eviction_partially(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine, max_subjects=1)
        cache.size_l("author", 1, 5)
        cache.complete_os_flat("author", 1)
        cache.size_l("author", 2, 5)  # evicts subject 1 entirely
        assert cache.cached_subjects == 1
        assert cache.cached_results == 1  # only subject 2's memo
        # regenerating subject 1 misses on both the tree and the memo
        before = cache.stats()
        cache.size_l("author", 1, 5)
        after = cache.stats()
        assert after["result_computations"] == before["result_computations"] + 1

    def test_book_never_exceeds_capacity(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine, max_subjects=3)
        for row_id in range(8):
            cache.size_l("author", row_id, 4)
            assert cache.cached_subjects <= 3


class TestInvalidation:
    def test_invalidate_all(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        cache.complete_os("author", 1)
        cache.invalidate()
        assert cache.cached_subjects == 0

    def test_invalidate_one_subject(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        cache.complete_os("author", 1)
        cache.complete_os("author", 2)
        cache.invalidate("author", 1)
        assert cache.cached_subjects == 1

    def test_invalidate_table(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        cache.complete_os("author", 1)
        cache.complete_os("paper", 1)
        cache.invalidate("author")
        assert cache.cached_subjects == 1

    def test_invalidate_row_without_table_raises(self, dblp_engine) -> None:
        # This used to silently clear the ENTIRE cache, ignoring row_id.
        cache = SummaryCache(dblp_engine)
        cache.complete_os("author", 1)
        with pytest.raises(ValueError, match="requires rds_table"):
            cache.invalidate(row_id=5)
        assert cache.cached_subjects == 1  # nothing was dropped


class TestCountingBugfix:
    """``cached_subjects`` counts the unified book — including subjects
    that hold only memoised prelim/database-path results (the old count
    looked only at the tree stores and reported 0 for them)."""

    def test_memo_only_subject_is_counted(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        # prelim-source results never cache a complete tree
        cache.run("author", 1, QueryOptions(l=5, source=Source.PRELIM))
        assert cache.cached_subjects == 1
        assert cache.cached_results == 1
        assert cache.stats()["cached_subjects"] == 1

    def test_cached_results_tracks_memos_not_trees(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        cache.complete_os("author", 1)  # tree only, no memo
        assert cache.cached_subjects == 1
        assert cache.cached_results == 0
        cache.size_l("author", 1, 5)
        cache.size_l("author", 1, 7)
        assert cache.cached_results == 2


class TestCacheStatsMerge:
    """``CacheStats.merge``: the cluster's per-worker counter aggregation."""

    def test_merge_sums_every_counter(self) -> None:
        from repro.core.cache import CacheStats

        a = CacheStats(hits=3, misses=1, cached_subjects=2, tree_generations=1)
        b = CacheStats(hits=4, misses=2, evictions=5, disk_hits=7)
        merged = CacheStats.merge(a, b)
        assert merged.hits == 7
        assert merged.misses == 3
        assert merged.cached_subjects == 2
        assert merged.tree_generations == 1
        assert merged.evictions == 5
        assert merged.disk_hits == 7
        # derived properties compose like the raw counters do
        assert merged.requests == a.requests + b.requests

    def test_merge_accepts_wire_dicts(self) -> None:
        """Workers report counters as JSON dicts; merge takes them as-is
        (missing keys mean zero — a newer router may merge older workers)."""
        from repro.core.cache import CacheStats

        merged = CacheStats.merge(
            {"hits": 2, "misses": 1},
            CacheStats(hits=1),
            {},
        )
        assert merged.hits == 3
        assert merged.misses == 1
        assert merged.evictions == 0

    def test_merge_of_nothing_is_all_zeros(self) -> None:
        from repro.core.cache import CacheStats

        assert CacheStats.merge() == CacheStats()
        assert CacheStats.merge().requests == 0

    def test_merge_rejects_non_integer_counters(self) -> None:
        from repro.core.cache import CacheStats

        with pytest.raises(TypeError, match="non-integer counter"):
            CacheStats.merge({"hits": "3"})
        with pytest.raises(TypeError, match="non-integer counter"):
            CacheStats.merge({"hits": True})

    def test_merge_round_trips_as_dict(self) -> None:
        from repro.core.cache import CacheStats

        a = CacheStats(hits=5, single_flight_waits=2, snapshot_stale=1)
        b = CacheStats(misses=3, lock_contention=4)
        assert (
            CacheStats.merge(a.as_dict(), b.as_dict())
            == CacheStats.merge(a, b).as_dict()
        )
