"""Tests for the summary cache (Section 7 pre-computation direction)."""

from __future__ import annotations

import pytest

from repro.core.cache import SummaryCache
from repro.errors import SummaryError


class TestCompleteOSCache:
    def test_second_fetch_is_a_hit_and_same_object(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        first = cache.complete_os("author", 1)
        second = cache.complete_os("author", 1)
        assert first is second
        assert cache.stats() == {"hits": 1, "misses": 1, "cached_subjects": 1}

    def test_lru_eviction(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine, max_subjects=2)
        a = cache.complete_os("author", 1)
        cache.complete_os("author", 2)
        cache.complete_os("author", 3)  # evicts subject 1
        assert cache.cached_subjects == 2
        again = cache.complete_os("author", 1)
        assert again is not a  # regenerated after eviction

    def test_touch_refreshes_lru_order(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine, max_subjects=2)
        a = cache.complete_os("author", 1)
        cache.complete_os("author", 2)
        cache.complete_os("author", 1)  # touch 1: now 2 is the LRU entry
        cache.complete_os("author", 3)  # evicts 2, keeps 1
        assert cache.complete_os("author", 1) is a

    def test_bad_capacity(self, dblp_engine) -> None:
        with pytest.raises(ValueError):
            SummaryCache(dblp_engine, max_subjects=0)


class TestSizeLMemo:
    def test_memoised_result_identical(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        first = cache.size_l("author", 1, 10)
        second = cache.size_l("author", 1, 10)
        assert first is second

    def test_results_match_engine(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        cached = cache.size_l("author", 1, 10, algorithm="dp")
        direct = dblp_engine.size_l("author", 1, 10, algorithm="dp")
        assert cached.selected_uids == direct.selected_uids
        assert cached.importance == pytest.approx(direct.importance)

    def test_distinct_l_and_algorithms_cached_separately(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        a = cache.size_l("author", 1, 5)
        b = cache.size_l("author", 1, 10)
        c = cache.size_l("author", 1, 5, algorithm="bottom_up")
        assert a is not b and a is not c

    def test_unknown_algorithm(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        with pytest.raises(SummaryError):
            cache.size_l("author", 1, 5, algorithm="magic")

    def test_eviction_drops_memoised_results(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine, max_subjects=1)
        first = cache.size_l("author", 1, 5)
        cache.size_l("author", 2, 5)  # evicts subject 1 with its results
        again = cache.size_l("author", 1, 5)
        assert again is not first


class TestInvalidation:
    def test_invalidate_all(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        cache.complete_os("author", 1)
        cache.invalidate()
        assert cache.cached_subjects == 0

    def test_invalidate_one_subject(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        cache.complete_os("author", 1)
        cache.complete_os("author", 2)
        cache.invalidate("author", 1)
        assert cache.cached_subjects == 1

    def test_invalidate_table(self, dblp_engine) -> None:
        cache = SummaryCache(dblp_engine)
        cache.complete_os("author", 1)
        cache.complete_os("paper", 1)
        cache.invalidate("author")
        assert cache.cached_subjects == 1
