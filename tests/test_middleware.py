"""Unit and HTTP-level tests for the middleware pipeline (PR 8).

Covers the spine (request ids, thread-local context) and every rider:
constant-time token auth (pinned 401), token-bucket rate limiting with a
fake clock (pinned 429 + Retry-After), structured JSON access logs,
Prometheus metrics, the 413 oversized-body regression, request-id echo on
every response, and supervisor stderr-log rotation.
"""

from __future__ import annotations

import http.client
import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.cache import CacheStats
from repro.errors import (
    AuthenticationError,
    RateLimitedError,
    RequestValidationError,
    ServiceError,
)
from repro.cluster.supervisor import _prune_stderr_logs
from repro.service import Deployment, create_server
from repro.service.dispatch import ServiceDispatcher
from repro.service.http import MAX_BODY_BYTES
from repro.service.middleware import (
    AUTH_FAILURES_METRIC,
    MAX_REQUEST_ID_LENGTH,
    MAX_TRACKED_CLIENTS,
    REQUEST_ID_HEADER,
    THROTTLED_METRIC,
    AccessLog,
    AccessLogMiddleware,
    AuthMiddleware,
    MetricsRegistry,
    MiddlewareConfig,
    MiddlewarePipeline,
    RateLimiter,
    RateLimitMiddleware,
    RequestContext,
    TokenAuthenticator,
    build_pipeline,
    client_key,
    context_scope,
    current_context,
    new_request_id,
    validate_request_id,
)
from repro.service.protocol import encode_error

L = 6


# --------------------------------------------------------------------- #
# Context and request ids
# --------------------------------------------------------------------- #
class TestRequestContext:
    def test_generated_ids_are_valid_and_unique(self) -> None:
        a, b = new_request_id(), new_request_id()
        assert a != b
        assert validate_request_id(a) == a

    @pytest.mark.parametrize("good", ["a", "trace-1", "A.b_c-9", "x" * 128])
    def test_validate_accepts(self, good: str) -> None:
        assert validate_request_id(good) == good

    @pytest.mark.parametrize(
        "bad", ["", "x" * (MAX_REQUEST_ID_LENGTH + 1), "sp ace", "new\nline", 'q"uote', None, 7]
    )
    def test_validate_rejects(self, bad: object) -> None:
        with pytest.raises(RequestValidationError):
            validate_request_id(bad)

    def test_wire_identity_round_trips(self) -> None:
        ctx = RequestContext(request_id="abc-123", principal="alice")
        hop = RequestContext.from_wire(ctx.wire_identity(), endpoint="/v1/batch")
        assert hop.request_id == "abc-123"
        assert hop.principal == "alice"
        assert hop.endpoint == "/v1/batch"

    def test_from_wire_tolerates_garbage(self) -> None:
        for raw in (None, "nope", 42, {"request_id": "bad id!"}, {"principal": 3}):
            ctx = RequestContext.from_wire(raw)
            assert validate_request_id(ctx.request_id)
            assert ctx.principal is None

    def test_context_scope_installs_and_restores(self) -> None:
        assert current_context() is None
        outer = RequestContext()
        with context_scope(outer):
            assert current_context() is outer
            with context_scope(RequestContext()):
                assert current_context() is not outer
            assert current_context() is outer
        assert current_context() is None


# --------------------------------------------------------------------- #
# Auth
# --------------------------------------------------------------------- #
class TestTokenAuth:
    def test_file_parsing(self, tmp_path) -> None:
        path = tmp_path / "tokens"
        path.write_text(
            "# a comment\n\nalice:secret-a\nbare-token\nbob:secret-b\n",
            encoding="utf-8",
        )
        auth = TokenAuthenticator.from_file(path)
        assert len(auth) == 3
        assert auth.authenticate("secret-a") == "alice"
        assert auth.authenticate("bare-token") == "client"
        assert auth.authenticate("secret-b") == "bob"
        assert auth.authenticate("wrong") is None
        assert auth.authenticate(None) is None
        assert auth.authenticate("") is None

    def test_malformed_line_rejected(self, tmp_path) -> None:
        path = tmp_path / "tokens"
        path.write_text("alice:\n", encoding="utf-8")
        with pytest.raises(ServiceError, match="line 1"):
            TokenAuthenticator.from_file(path)

    def test_missing_file_rejected(self, tmp_path) -> None:
        with pytest.raises(ServiceError, match="cannot read"):
            TokenAuthenticator.from_file(tmp_path / "absent")

    def test_empty_table_rejected(self) -> None:
        with pytest.raises(ServiceError):
            TokenAuthenticator({})

    def test_middleware_rejects_with_pinned_401(self) -> None:
        metrics = MetricsRegistry()
        middleware = AuthMiddleware(
            TokenAuthenticator({"tok": "alice"}), metrics=metrics
        )
        ctx = RequestContext(credential="nope")
        status, body = middleware.handle(
            ctx, "/v1/query", None, lambda: (200, {"never": True})
        )
        assert status == 401
        assert body == encode_error(AuthenticationError(), 401)
        assert ctx.response_headers["WWW-Authenticate"] == "Bearer"
        assert ctx.principal is None
        assert metrics.snapshot()["events"][AUTH_FAILURES_METRIC] == 1

    def test_middleware_sets_principal_on_success(self) -> None:
        middleware = AuthMiddleware(TokenAuthenticator({"tok": "alice"}))
        ctx = RequestContext(credential="tok")
        status, _body = middleware.handle(
            ctx, "/v1/query", None, lambda: (200, {"ok": True})
        )
        assert status == 200
        assert ctx.principal == "alice"


# --------------------------------------------------------------------- #
# Rate limiting (fake clock — no sleeps)
# --------------------------------------------------------------------- #
class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestRateLimiter:
    def test_burst_then_throttle_then_refill(self) -> None:
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=2, clock=clock)
        assert limiter.admit("a") is None
        assert limiter.admit("a") is None
        retry = limiter.admit("a")
        assert retry is not None and retry == pytest.approx(1.0)
        clock.now += 1.0  # one token lands
        assert limiter.admit("a") is None
        assert limiter.admit("a") is not None

    def test_clients_are_independent(self) -> None:
        limiter = RateLimiter(rate=1.0, burst=1, clock=FakeClock())
        assert limiter.admit("a") is None
        assert limiter.admit("a") is not None
        assert limiter.admit("b") is None

    def test_concurrency_quota_frees_on_release(self) -> None:
        limiter = RateLimiter(max_concurrent=2, clock=FakeClock())
        assert limiter.admit("a") is None
        assert limiter.admit("a") is None
        assert limiter.admit("a") == pytest.approx(1.0)
        limiter.release("a")
        assert limiter.admit("a") is None

    def test_tracked_clients_are_bounded(self) -> None:
        limiter = RateLimiter(rate=1.0, burst=1, clock=FakeClock())
        for i in range(MAX_TRACKED_CLIENTS + 50):
            limiter.admit(f"client-{i}")
        assert len(limiter._buckets) <= MAX_TRACKED_CLIENTS

    def test_invalid_params_rejected(self) -> None:
        with pytest.raises(ServiceError):
            RateLimiter(rate=0)
        with pytest.raises(ServiceError):
            RateLimiter(rate=1.0, burst=0)
        with pytest.raises(ServiceError):
            RateLimiter(max_concurrent=0)

    def test_client_key_prefers_principal(self) -> None:
        assert client_key(RequestContext(principal="p", client="c")) == "p"
        assert client_key(RequestContext(client="c")) == "c"
        assert client_key(RequestContext()) == "anonymous"

    def test_middleware_throttles_with_pinned_429(self) -> None:
        metrics = MetricsRegistry()
        limiter = RateLimiter(rate=1.0, burst=1, clock=FakeClock())
        middleware = RateLimitMiddleware(limiter, metrics=metrics)
        ctx = RequestContext(client="1.2.3.4")
        status, _ = middleware.handle(ctx, "/v1/query", None, lambda: (200, {}))
        assert status == 200
        status, body = middleware.handle(ctx, "/v1/query", None, lambda: (200, {}))
        assert status == 429
        assert body == encode_error(RateLimitedError(), 429)
        assert ctx.response_headers["Retry-After"] == "1"
        assert metrics.snapshot()["events"][THROTTLED_METRIC] == 1


# --------------------------------------------------------------------- #
# Access log
# --------------------------------------------------------------------- #
class TestAccessLog:
    def test_record_fields(self) -> None:
        stream = io.StringIO()
        log = AccessLog(stream, extra={"shard": 3})
        ctx = RequestContext(
            request_id="req-1", principal="alice", client="127.0.0.1", dataset="dblp"
        )
        ctx.note("cache_hit", True)
        log.write(ctx, "/v1/query", 200)
        record = json.loads(stream.getvalue())
        assert record["id"] == "req-1"
        assert record["principal"] == "alice"
        assert record["client"] == "127.0.0.1"
        assert record["endpoint"] == "/v1/query"
        assert record["dataset"] == "dblp"
        assert record["status"] == 200
        assert record["cache_hit"] is True
        assert record["shard"] == 3
        assert record["duration_ms"] >= 0
        assert "T" in record["ts"]

    def test_one_line_per_request(self) -> None:
        stream = io.StringIO()
        log = AccessLog(stream)
        for status in (200, 404, 503):
            log.write(RequestContext(), "/v1/size-l", status)
        lines = stream.getvalue().splitlines()
        assert [json.loads(line)["status"] for line in lines] == [200, 404, 503]

    def test_middleware_logs_final_status(self) -> None:
        stream = io.StringIO()
        middleware = AccessLogMiddleware(AccessLog(stream))
        ctx = RequestContext()
        middleware.handle(ctx, "/v1/query", None, lambda: (429, {}))
        assert json.loads(stream.getvalue())["status"] == 429

    def test_closed_stream_never_raises(self) -> None:
        stream = io.StringIO()
        log = AccessLog(stream)
        stream.close()
        log.write(RequestContext(), "/v1/query", 200)  # must not raise


# --------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------- #
class TestMetrics:
    def test_render_counters_and_histogram(self) -> None:
        registry = MetricsRegistry()
        registry.observe("/v1/query", 200, 0.002)
        registry.observe("/v1/query", 200, 0.3)
        registry.observe("/v1/query", 400, 0.0005)
        registry.inc("repro_auth_failures_total", 2)
        text = registry.render()
        assert 'repro_requests_total{endpoint="/v1/query",status="200"} 2' in text
        assert 'repro_requests_total{endpoint="/v1/query",status="400"} 1' in text
        # buckets are cumulative: all 3 observations are <= +Inf
        assert (
            'repro_request_duration_seconds_bucket{endpoint="/v1/query",le="+Inf"} 3'
            in text
        )
        assert 'repro_request_duration_seconds_count{endpoint="/v1/query"} 3' in text
        assert "repro_auth_failures_total 2" in text

    def test_histogram_buckets_are_monotonic(self) -> None:
        registry = MetricsRegistry()
        for seconds in (0.0001, 0.004, 0.04, 0.4, 4.0, 40.0):
            registry.observe("/v1/batch", 200, seconds)
        counts = []
        for line in registry.render().splitlines():
            if line.startswith("repro_request_duration_seconds_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)
        assert counts[-1] == 6  # +Inf sees everything

    def test_cache_stats_section(self) -> None:
        registry = MetricsRegistry()
        stats = CacheStats(hits=5, misses=2)
        text = registry.render(cache_stats={"dblp": stats})
        assert 'repro_cache_hits{dataset="dblp"} 5' in text
        assert 'repro_cache_misses{dataset="dblp"} 2' in text

    def test_label_escaping(self) -> None:
        registry = MetricsRegistry()
        registry.observe('bad"label\n', 200, 0.001)
        text = registry.render()
        assert 'endpoint="bad\\"label\\n"' in text


# --------------------------------------------------------------------- #
# Pipeline composition
# --------------------------------------------------------------------- #
class _StubDispatcher:
    def __init__(self) -> None:
        self.calls: list[tuple[str, object]] = []

    def dispatch_safe(self, endpoint: str, payload: object = None):
        self.calls.append((endpoint, payload))
        ctx = current_context()
        assert ctx is not None  # the pipeline must install the context
        return 200, {"ok": True}


class TestPipeline:
    def test_disarmed_pipeline_passes_bodies_through(self) -> None:
        stub = _StubDispatcher()
        pipeline = build_pipeline(stub, None)
        status, body = pipeline.dispatch_safe("/v1/query", {"dataset": "x"})
        assert (status, body) == (200, {"ok": True})
        assert stub.calls == [("/v1/query", {"dataset": "x"})]
        assert pipeline.middlewares == ()

    def test_rejections_are_counted_and_logged(self) -> None:
        stream = io.StringIO()
        stub = _StubDispatcher()
        pipeline = MiddlewarePipeline(
            stub,
            [
                AccessLogMiddleware(AccessLog(stream)),
                AuthMiddleware(TokenAuthenticator({"tok": "alice"})),
            ],
        )
        status, body = pipeline.handle(
            RequestContext(credential="wrong"), "/v1/query", {"dataset": "x"}
        )
        assert status == 401
        assert body == encode_error(AuthenticationError(), 401)
        assert stub.calls == []  # never reached the dispatcher
        # the access log saw the *final* status, and metrics counted it
        assert json.loads(stream.getvalue())["status"] == 401
        assert pipeline.metrics.snapshot()["requests"][("/v1/query", 401)] == 1

    def test_context_carries_dataset_and_deadline(self) -> None:
        pipeline = build_pipeline(_StubDispatcher(), None)
        ctx = RequestContext()
        pipeline.handle(ctx, "/v1/query", {"dataset": "dblp", "deadline_ms": 250})
        assert ctx.dataset == "dblp"
        assert ctx.deadline_ms == 250
        assert ctx.annotations["dispatch_ms"] >= 0

    def test_build_pipeline_pinned_order(self, tmp_path) -> None:
        tokens = tmp_path / "tokens"
        tokens.write_text("tok\n", encoding="utf-8")
        config = MiddlewareConfig(
            auth_token_file=tokens,
            rate_limit=100.0,
            access_log=io.StringIO(),
        )
        assert config.armed
        pipeline = build_pipeline(_StubDispatcher(), config)
        kinds = [type(m).__name__ for m in pipeline.middlewares]
        assert kinds == ["AccessLogMiddleware", "AuthMiddleware", "RateLimitMiddleware"]

    def test_metrics_text_survives_failing_cache_hook(self) -> None:
        class Broken(_StubDispatcher):
            def cache_stats_by_dataset(self):
                raise RuntimeError("shard restarting")

        pipeline = build_pipeline(Broken(), None)
        assert "repro_requests_total" in pipeline.metrics_text()


# --------------------------------------------------------------------- #
# Dispatcher cache hooks
# --------------------------------------------------------------------- #
class TestDispatcherHooks:
    def test_cache_stats_by_dataset_is_non_building(self, dblp) -> None:
        deployment = Deployment().add("dblp", dataset=dblp)
        dispatcher = ServiceDispatcher(deployment)
        try:
            assert dispatcher.cache_stats_by_dataset() == {}  # nothing built
            deployment.session("dblp")
            stats = dispatcher.cache_stats_by_dataset()
            assert set(stats) == {"dblp"}
            assert isinstance(stats["dblp"], CacheStats)
        finally:
            deployment.close()


# --------------------------------------------------------------------- #
# HTTP integration: ids, 413, 401, 429, metrics, access log
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def module_deployment(dblp):
    deployment = Deployment().add("dblp", dataset=dblp)
    yield deployment
    deployment.close()


def _spawn(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


@pytest.fixture(scope="module")
def plain_server(module_deployment):
    server = create_server(module_deployment)
    thread = _spawn(server)
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def armed(module_deployment, tmp_path_factory):
    """(server, log stream) with auth + generous rate limit + access log."""
    tokens = tmp_path_factory.mktemp("auth") / "tokens"
    tokens.write_text("alice:sesame\n", encoding="utf-8")
    stream = io.StringIO()
    config = MiddlewareConfig(
        auth_token_file=tokens, rate_limit=10_000.0, access_log=stream
    )
    server = create_server(module_deployment, middleware=config)
    thread = _spawn(server)
    yield server, stream
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def call(server, path, body=None, headers=None, method=None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        server.url + path,
        data=data,
        method=method or ("POST" if data is not None else "GET"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def last_log_line(stream: io.StringIO) -> dict:
    return json.loads(stream.getvalue().splitlines()[-1])


QUERY = {"dataset": "dblp", "keywords": ["Faloutsos"], "options": {"l": L}}
AUTH = {"Authorization": "Bearer sesame"}


class TestRequestIdEcho:
    def test_generated_id_on_success(self, plain_server) -> None:
        status, headers, _ = call(plain_server, "/v1/datasets")
        assert status == 200
        assert validate_request_id(headers[REQUEST_ID_HEADER])

    def test_client_id_honored(self, plain_server) -> None:
        status, headers, _ = call(
            plain_server, "/v1/datasets", headers={REQUEST_ID_HEADER: "trace-42"}
        )
        assert status == 200
        assert headers[REQUEST_ID_HEADER] == "trace-42"

    def test_invalid_id_is_400_with_fresh_id(self, plain_server) -> None:
        status, headers, raw = call(
            plain_server, "/v1/datasets", headers={REQUEST_ID_HEADER: "bad id!"}
        )
        assert status == 400
        body = json.loads(raw)
        assert body["error"]["type"] == "RequestValidationError"
        echoed = headers[REQUEST_ID_HEADER]
        assert echoed != "bad id!" and validate_request_id(echoed)

    def test_echoed_on_errors_and_405(self, plain_server) -> None:
        for path, body, method in (
            ("/v1/nope", None, None),  # 404
            ("/v1/query", None, "GET"),  # 405
            ("/v1/healthz", None, None),  # pre-pipeline
        ):
            _, headers, _ = call(plain_server, path, body, method=method)
            assert validate_request_id(headers[REQUEST_ID_HEADER])

    def test_id_echoed_on_armed_401(self, armed) -> None:
        server, _ = armed
        status, headers, _ = call(
            server, "/v1/datasets", headers={REQUEST_ID_HEADER: "auth-trace"}
        )
        assert status == 401
        assert headers[REQUEST_ID_HEADER] == "auth-trace"


class TestOversizedBody:
    def test_413_regression(self, plain_server) -> None:
        """A Content-Length above the cap is the pinned 413, not a 400."""
        conn = http.client.HTTPConnection(
            plain_server.server_address[0], plain_server.port, timeout=30
        )
        try:
            conn.putrequest("POST", "/v1/query")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            conn.endheaders()
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 413
        assert payload["error"]["type"] == "PayloadTooLargeError"
        assert payload["error"]["status"] == 413
        assert str(MAX_BODY_BYTES) in payload["error"]["message"]
        assert validate_request_id(response.headers[REQUEST_ID_HEADER])

    def test_negative_length_still_400(self, plain_server) -> None:
        conn = http.client.HTTPConnection(
            plain_server.server_address[0], plain_server.port, timeout=30
        )
        try:
            conn.putrequest("POST", "/v1/query")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", "-1")
            conn.endheaders()
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert payload["error"]["type"] == "RequestValidationError"


class TestArmedServing:
    def test_no_credential_is_pinned_401(self, armed) -> None:
        server, _ = armed
        status, headers, raw = call(server, "/v1/query", QUERY)
        assert status == 401
        assert json.loads(raw) == encode_error(AuthenticationError(), 401)
        assert headers["WWW-Authenticate"] == "Bearer"

    def test_wrong_credential_is_401(self, armed) -> None:
        server, _ = armed
        status, _, _ = call(
            server, "/v1/query", QUERY, headers={"Authorization": "Bearer nope"}
        )
        assert status == 401

    def test_good_credential_serves_and_logs_principal(self, armed) -> None:
        server, stream = armed
        status, _, raw = call(server, "/v1/query", QUERY, headers=AUTH)
        assert status == 200
        assert json.loads(raw)["results"]
        record = last_log_line(stream)
        assert record["principal"] == "alice"
        assert record["endpoint"] == "/v1/query"
        assert record["dataset"] == "dblp"
        assert record["status"] == 200
        assert isinstance(record["cache_hit"], bool)

    def test_cache_hit_flag_flips_on_warm_request(self, armed) -> None:
        server, stream = armed
        status, _, raw = call(server, "/v1/query", QUERY, headers=AUTH)
        assert status == 200
        subject = json.loads(raw)["results"][0]
        body = {
            "dataset": "dblp",
            "table": subject["table"],
            "row_id": subject["row_id"],
            "options": {"l": L},
        }
        call(server, "/v1/size-l", body, headers=AUTH)  # primes the cache
        status, _, _ = call(server, "/v1/size-l", body, headers=AUTH)
        assert status == 200
        assert last_log_line(stream)["cache_hit"] is True

    def test_health_and_metrics_skip_auth(self, armed) -> None:
        server, _ = armed
        status, _, raw = call(server, "/v1/healthz")
        assert status == 200 and json.loads(raw)["ok"] is True
        status, headers, raw = call(server, "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = raw.decode("utf-8")
        assert 'status="401"' in text  # earlier rejections were counted
        assert AUTH_FAILURES_METRIC in text
        assert 'repro_cache_hits{dataset="dblp"}' in text

    def test_throttled_server_answers_pinned_429(self, module_deployment) -> None:
        config = MiddlewareConfig(rate_limit=0.001, rate_burst=1)
        server = create_server(module_deployment, middleware=config)
        thread = _spawn(server)
        try:
            status, _, _ = call(server, "/v1/datasets")
            assert status == 200
            status, headers, raw = call(server, "/v1/datasets")
            assert status == 429
            assert json.loads(raw) == encode_error(RateLimitedError(), 429)
            assert int(headers["Retry-After"]) >= 1
            text = call(server, "/v1/metrics")[2].decode("utf-8")
            assert THROTTLED_METRIC in text
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_max_concurrent_alone_arms_quota(self, module_deployment) -> None:
        config = MiddlewareConfig(max_concurrent=1)
        server = create_server(module_deployment, middleware=config)
        thread = _spawn(server)
        try:  # sequential requests never collide with a concurrency quota
            for _ in range(3):
                status, _, _ = call(server, "/v1/datasets")
                assert status == 200
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestMetricsEndpoint:
    def test_counters_accumulate(self, plain_server) -> None:
        call(plain_server, "/v1/datasets")
        call(plain_server, "/v1/nope")
        status, _, raw = call(plain_server, "/v1/metrics")
        assert status == 200
        text = raw.decode("utf-8")
        assert 'repro_requests_total{endpoint="/v1/datasets",status="200"}' in text
        assert 'repro_requests_total{endpoint="/v1/nope",status="404"}' in text
        assert "repro_request_duration_seconds_bucket" in text

    def test_post_to_metrics_is_405(self, plain_server) -> None:
        status, headers, _ = call(plain_server, "/v1/metrics", {"x": 1})
        assert status == 405
        assert headers["Allow"] == "GET"


# --------------------------------------------------------------------- #
# Supervisor stderr-log rotation
# --------------------------------------------------------------------- #
class TestStderrRotation:
    def test_old_generations_pruned_and_survivors_capped(self, tmp_path) -> None:
        for generation in range(1, 6):
            path = tmp_path / f"stderr-0-{generation}.log"
            path.write_bytes(b"x" * 100 + str(generation).encode())
        other = tmp_path / "stderr-1-1.log"
        other.write_bytes(b"other shard")
        _prune_stderr_logs(tmp_path, 0, keep=2, cap_bytes=10)
        kept = sorted(p.name for p in tmp_path.glob("stderr-0-*.log"))
        assert kept == ["stderr-0-4.log", "stderr-0-5.log"]
        for name in kept:
            content = (tmp_path / name).read_bytes()
            assert len(content) == 10
            assert content.endswith(name[-5].encode())  # the tail survived
        assert other.read_bytes() == b"other shard"  # other shards untouched

    def test_small_logs_left_alone(self, tmp_path) -> None:
        path = tmp_path / "stderr-2-1.log"
        path.write_bytes(b"short")
        _prune_stderr_logs(tmp_path, 2, keep=3, cap_bytes=1024)
        assert path.read_bytes() == b"short"

    def test_non_generation_files_ignored(self, tmp_path) -> None:
        weird = tmp_path / "stderr-0-notanumber.log"
        weird.write_bytes(b"keep me")
        _prune_stderr_logs(tmp_path, 0, keep=1, cap_bytes=1)
        assert weird.read_bytes() == b"keep me"
