"""End-to-end engine tests: the paper's keyword → size-l OS pipeline."""

from __future__ import annotations

import pytest

from repro.errors import SummaryError


class TestSizeL:
    def test_pipeline_stats(self, dblp_engine) -> None:
        result = dblp_engine.size_l("author", 0, 10, algorithm="top_path")
        assert result.size == 10
        assert result.stats["source"] == "complete"
        assert result.stats["initial_os_size"] > 10
        assert result.stats["generation_seconds"] >= 0
        assert result.stats["algorithm_seconds"] >= 0

    def test_prelim_source_records_prelim_stats(self, dblp_engine) -> None:
        result = dblp_engine.size_l("author", 0, 10, source="prelim")
        assert result.stats["prelim"].extracted_tuples >= 10

    def test_prelim_and_complete_agree_closely(self, dblp_engine) -> None:
        optimum = dblp_engine.size_l("author", 0, 10, algorithm="dp").importance
        # DP is monotone under input containment: prelim ⊆ complete ⇒ the
        # prelim optimum cannot exceed the true optimum.
        dp_prelim = dblp_engine.size_l("author", 0, 10, algorithm="dp", source="prelim")
        assert dp_prelim.importance <= optimum + 1e-9
        assert dp_prelim.importance >= 0.9 * optimum
        # Greedy heuristics are NOT monotone (pruning distractors can help),
        # so only bound them against the optimum from both sides.
        for algorithm in ("bottom_up", "top_path"):
            full = dblp_engine.size_l("author", 0, 10, algorithm=algorithm)
            pre = dblp_engine.size_l("author", 0, 10, algorithm=algorithm, source="prelim")
            assert pre.importance <= optimum + 1e-9
            assert full.importance <= optimum + 1e-9
            assert pre.importance >= 0.85 * optimum
            assert full.importance >= 0.85 * optimum

    def test_unknown_algorithm_rejected(self, dblp_engine) -> None:
        with pytest.raises(SummaryError, match="unknown algorithm"):
            dblp_engine.size_l("author", 0, 5, algorithm="magic")

    def test_unknown_source_rejected(self, dblp_engine) -> None:
        with pytest.raises(SummaryError, match="unknown source"):
            dblp_engine.size_l("author", 0, 5, source="cache")

    def test_unknown_rds_rejected(self, dblp_engine) -> None:
        with pytest.raises(SummaryError, match="no G_DS"):
            dblp_engine.size_l("conference", 0, 5)

    def test_dp_beats_or_matches_greedy(self, dblp_engine) -> None:
        dp = dblp_engine.size_l("author", 0, 15, algorithm="dp")
        for algorithm in ("bottom_up", "top_path", "top_path_optimized"):
            greedy = dblp_engine.size_l("author", 0, 15, algorithm=algorithm)
            assert greedy.importance <= dp.importance + 1e-9


class TestKeywordQuery:
    def test_example_5_shape(self, dblp_engine) -> None:
        """Q1 = "Faloutsos", l = 15: three size-15 OSs (Example 5)."""
        results = dblp_engine.keyword_query("Faloutsos", l=15)
        assert len(results) == 3
        for entry in results:
            assert entry.result.size == 15
            rendered = entry.result.render()
            assert rendered.splitlines()[0].startswith("Author: ")
            assert "Faloutsos" in rendered.splitlines()[0]

    def test_results_ordered_by_subject_importance(self, dblp_engine) -> None:
        results = dblp_engine.keyword_query("Faloutsos", l=5)
        importances = [entry.match.importance for entry in results]
        assert importances == sorted(importances, reverse=True)

    def test_max_results(self, dblp_engine) -> None:
        results = dblp_engine.keyword_query("Faloutsos", l=5, max_results=1)
        assert len(results) == 1

    def test_tpch_supplier_query(self, tpch_engine) -> None:
        results = tpch_engine.keyword_query("Supplier#000001", l=8)
        assert len(results) == 1
        assert results[0].result.summary.root.table == "supplier"

    def test_describe(self, dblp_engine) -> None:
        info = dblp_engine.describe()
        assert info["rds_tables"] == ["author", "paper"]
        assert info["theta"] == 0.7
        assert info["total_rows"] == dblp_engine.db.total_rows


class TestEngineConstruction:
    def test_gds_annotated_on_construction(self, dblp_engine) -> None:
        gds = dblp_engine.gds_for("author")
        assert gds.node("Paper").max_local > 0
        assert gds.node("Paper").mmax_local > 0
        assert gds.node("Conference").mmax_local == 0.0  # leaf

    def test_gds_pruned_at_theta(self, dblp_engine) -> None:
        gds = dblp_engine.gds_for("author")
        assert all(n.affinity >= 0.7 for n in gds.nodes() if not n.is_root)

    def test_data_graph_lazy_and_cached(self, dblp_engine) -> None:
        assert dblp_engine.data_graph is dblp_engine.data_graph
