"""Unit tests for the transfer-matrix internals: shares, value weighting,
source scaling — the machinery behind ObjectRank and ValueRank."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import Column, ColumnType, Database, ForeignKey, TableSchema
from repro.ranking.authority import (
    AuthorityRelationship,
    AuthorityTransferGraph,
    ValueFunction,
    receiver_weights,
    source_scalers,
)
from repro.ranking.power import NodeNumbering, build_transfer_matrix

INT, TEXT, FLOAT = ColumnType.INT, ColumnType.TEXT, ColumnType.FLOAT


def _db_two_children(values: tuple[float, float]) -> Database:
    db = Database()
    db.create_table(
        TableSchema("parent", [Column("pid", INT)], primary_key="pid")
    )
    db.create_table(
        TableSchema(
            "child",
            [
                Column("cid", INT),
                Column("pid", INT),
                Column("value", FLOAT),
            ],
            primary_key="cid",
            foreign_keys=[ForeignKey("pid", "parent", "pid")],
        )
    )
    db.insert("parent", [0])
    db.insert("child", [0, 0, values[0]])
    db.insert("child", [1, 0, values[1]])
    return db


def _relationship(**overrides) -> AuthorityRelationship:
    base = dict(
        name="rel",
        kind="fk",
        table_a="child",
        table_b="parent",
        column_a="pid",
        column_b=None,
        rate_forward=0.4,
        rate_backward=0.6,
    )
    base.update(overrides)
    return AuthorityRelationship(**base)


def _column_sums(db, ga) -> tuple[np.ndarray, NodeNumbering]:
    matrix, numbering = build_transfer_matrix(db, ga)
    return np.asarray(matrix.sum(axis=0)).ravel(), numbering


class TestEvenShares:
    def test_backward_rate_split_evenly(self) -> None:
        db = _db_two_children((1.0, 1.0))
        ga = AuthorityTransferGraph([_relationship()])
        matrix, numbering = build_transfer_matrix(db, ga)
        parent = numbering.global_id("parent", 0)
        children = [numbering.global_id("child", 0), numbering.global_id("child", 1)]
        dense = matrix.toarray()
        # Parent → each child: 0.6 / 2.
        for child in children:
            assert dense[child, parent] == pytest.approx(0.3)
        # Each child → parent: full 0.4 (single receiver).
        for child in children:
            assert dense[parent, child] == pytest.approx(0.4)

    def test_total_outgoing_rate_bounded(self) -> None:
        db = _db_two_children((1.0, 1.0))
        ga = AuthorityTransferGraph([_relationship()])
        sums, _ = _column_sums(db, ga)
        assert sums.max() <= 0.6 + 1e-12


class TestValueWeightedShares:
    def test_receiver_split_proportional_to_value(self) -> None:
        db = _db_two_children((30.0, 10.0))
        ga = AuthorityTransferGraph(
            [_relationship(value_backward=ValueFunction("child", "value"))]
        )
        matrix, numbering = build_transfer_matrix(db, ga)
        parent = numbering.global_id("parent", 0)
        dense = matrix.toarray()
        c0 = numbering.global_id("child", 0)
        c1 = numbering.global_id("child", 1)
        assert dense[c0, parent] == pytest.approx(0.6 * 0.75)
        assert dense[c1, parent] == pytest.approx(0.6 * 0.25)

    def test_all_zero_values_fall_back_to_even_split(self) -> None:
        db = _db_two_children((0.0, 0.0))
        ga = AuthorityTransferGraph(
            [_relationship(value_backward=ValueFunction("child", "value"))]
        )
        matrix, numbering = build_transfer_matrix(db, ga)
        parent = numbering.global_id("parent", 0)
        dense = matrix.toarray()
        assert dense[numbering.global_id("child", 0), parent] == pytest.approx(0.3)
        assert dense[numbering.global_id("child", 1), parent] == pytest.approx(0.3)

    def test_zero_valued_receiver_gets_nothing(self) -> None:
        db = _db_two_children((5.0, 0.0))
        ga = AuthorityTransferGraph(
            [_relationship(value_backward=ValueFunction("child", "value"))]
        )
        matrix, numbering = build_transfer_matrix(db, ga)
        parent = numbering.global_id("parent", 0)
        dense = matrix.toarray()
        assert dense[numbering.global_id("child", 0), parent] == pytest.approx(0.6)
        assert dense[numbering.global_id("child", 1), parent] == 0.0


class TestSourceScaling:
    def test_rate_scaled_by_normalised_source_value(self) -> None:
        db = _db_two_children((100.0, 25.0))
        ga = AuthorityTransferGraph(
            [_relationship(source_value_forward=ValueFunction("child", "value"))]
        )
        matrix, numbering = build_transfer_matrix(db, ga)
        parent = numbering.global_id("parent", 0)
        dense = matrix.toarray()
        # child 0 has the max value: full 0.4; child 1: 0.4 * 25/100.
        assert dense[parent, numbering.global_id("child", 0)] == pytest.approx(0.4)
        assert dense[parent, numbering.global_id("child", 1)] == pytest.approx(0.1)

    def test_scaler_helper_bounds(self) -> None:
        db = _db_two_children((8.0, 2.0))
        scaler = source_scalers(db, ValueFunction("child", "value"))
        assert scaler(0) == pytest.approx(1.0)
        assert scaler(1) == pytest.approx(0.25)

    def test_scaler_none_is_identity(self) -> None:
        db = _db_two_children((8.0, 2.0))
        scaler = source_scalers(db, None)
        assert scaler(0) == 1.0 and scaler(1) == 1.0

    def test_scaler_all_zero_degenerates_to_one(self) -> None:
        db = _db_two_children((0.0, 0.0))
        scaler = source_scalers(db, ValueFunction("child", "value"))
        assert scaler(0) == 1.0


class TestReceiverWeightHelper:
    def test_constant_without_value_function(self) -> None:
        db = _db_two_children((3.0, 4.0))
        weigh = receiver_weights(db, None)
        assert weigh(0) == 1.0 and weigh(1) == 1.0

    def test_reads_configured_column(self) -> None:
        db = _db_two_children((3.0, 4.0))
        weigh = receiver_weights(db, ValueFunction("child", "value"))
        assert weigh(0) == 3.0 and weigh(1) == 4.0
