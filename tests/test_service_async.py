"""Tests for AsyncSession — the asyncio adapter over the Session fan-out."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.options import QueryOptions
from repro.errors import SummaryError
from repro.service import AsyncSession
from repro.session import Session


@pytest.fixture()
def session(dblp_engine) -> Session:
    return Session(dblp_engine)


def run(coro):
    return asyncio.run(coro)


class TestAwaitables:
    def test_size_l_matches_sync(self, session) -> None:
        async def main():
            return await AsyncSession(session).size_l("author", 1, 8)

        result = run(main())
        expected = session.size_l("author", 1, 8)
        assert result.selected_uids == expected.selected_uids

    def test_keyword_query_matches_sync(self, session) -> None:
        options = QueryOptions(l=6)

        async def main():
            return await AsyncSession(session).keyword_query(
                "Faloutsos", options=options
            )

        results = run(main())
        expected = session.keyword_query("Faloutsos", options=options)
        assert [e.match.row_id for e in results] == [
            e.match.row_id for e in expected
        ]
        assert [e.result.selected_uids for e in results] == [
            e.result.selected_uids for e in expected
        ]

    def test_size_l_many_preserves_order(self, session) -> None:
        subjects = [("author", 2), ("author", 0), ("author", 1)]

        async def main():
            return await AsyncSession(session).size_l_many(
                subjects, 5, workers=3
            )

        results = run(main())
        expected = [session.size_l(t, r, 5) for t, r in subjects]
        assert [r.selected_uids for r in results] == [
            e.selected_uids for e in expected
        ]

    def test_errors_propagate(self, session) -> None:
        async def main():
            await AsyncSession(session).size_l("author", 1, 0)

        with pytest.raises(SummaryError):
            run(main())


class TestStreaming:
    def test_async_for_streams_all_results(self, session) -> None:
        options = QueryOptions(l=6)

        async def main():
            collected = []
            async for entry in AsyncSession(session).iter_keyword_query(
                "Faloutsos", options=options
            ):
                collected.append(entry)
            return collected

        results = run(main())
        expected = session.keyword_query("Faloutsos", options=options)
        assert [e.match.row_id for e in results] == [
            e.match.row_id for e in expected
        ]

    def test_parallel_streaming_matches_serial(self, session) -> None:
        options = QueryOptions(l=6)

        async def main():
            return [
                entry
                async for entry in AsyncSession(session).iter_keyword_query(
                    "Faloutsos", options=options, workers=4
                )
            ]

        results = run(main())
        expected = session.keyword_query("Faloutsos", options=options)
        assert [e.match.row_id for e in results] == [
            e.match.row_id for e in expected
        ]

    def test_event_loop_stays_responsive_while_streaming(self, session) -> None:
        """A heartbeat task must keep ticking while OSs are computed."""
        ticks = []

        async def heartbeat():
            while True:
                ticks.append(1)
                await asyncio.sleep(0)

        async def main():
            beat = asyncio.create_task(heartbeat())
            results = [
                entry
                async for entry in AsyncSession(session).iter_keyword_query(
                    "Faloutsos", options=QueryOptions(l=10)
                )
            ]
            beat.cancel()
            return results

        assert run(main())
        assert len(ticks) > 1

    def test_abandoning_the_stream_stops_the_producer(self, session) -> None:
        started = threading.Event()

        async def main():
            iterator = AsyncSession(session).iter_keyword_query(
                "Faloutsos", options=QueryOptions(l=5)
            )
            async for _entry in iterator:
                started.set()
                break  # abandon after the first result

        run(main())  # asyncio.run would hang if the producer leaked
        assert started.is_set()

    def test_search_errors_reach_the_consumer(self, session) -> None:
        async def main():
            async for _entry in AsyncSession(session).iter_keyword_query(
                "Faloutsos", options=QueryOptions(l=0)
            ):
                pass

        with pytest.raises(SummaryError):
            run(main())


class TestLifecycle:
    def test_context_manager_closes_session_pool(self, session) -> None:
        async def main():
            async with AsyncSession(session) as asession:
                await asession.size_l_many(
                    [("author", 0), ("author", 1)], 5, workers=2
                )
            return asession

        run(main())
        assert session._pool is None  # drained and detached by close()

    def test_cache_stats_passthrough(self, session) -> None:
        asession = AsyncSession(session)
        run(asession.size_l("author", 1, 5))
        assert asession.cache_stats().misses >= 1
