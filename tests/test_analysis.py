"""Tests for the optimal-family analysis (Section 7 future work)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.analysis import (
    incremental_failure_example,
    nesting_profile,
    optimal_family,
    stability_profile,
)

from tests.conftest import make_tree
from tests.test_size_l_algorithms import random_tree


class TestOptimalFamily:
    def test_sizes_grow_with_l(self, paper_figure4_tree) -> None:
        family = optimal_family(paper_figure4_tree, 8)
        for l in range(1, 9):  # noqa: E741
            assert len(family[l]) == min(l, paper_figure4_tree.size)

    def test_every_member_contains_root(self, paper_figure4_tree) -> None:
        family = optimal_family(paper_figure4_tree, 6)
        for selected in family.values():
            assert 0 in selected

    def test_bad_range_rejected(self, star_tree) -> None:
        with pytest.raises(ValueError):
            optimal_family(star_tree, max_l=2, min_l=5)


class TestNesting:
    def test_monotone_chain_is_nested(self, chain_tree) -> None:
        # A chain has a unique connected size-l subtree per l: fully nested.
        family = optimal_family(chain_tree, 5)
        profile = nesting_profile(family)
        assert profile.is_fully_nested
        assert profile.nested_fraction == 1.0

    def test_nesting_break_is_constructible(self) -> None:
        """The paper: "optimal size-l OSs for different l could be very
        different".  Construct the classic witness: at l=2 a rich shallow
        leaf wins; at l=3 a two-step path to a treasure displaces it."""
        structure = {0: [1, 2], 2: [3]}
        weights = {0: 10.0, 1: 5.0, 2: 1.0, 3: 100.0}
        tree = make_tree(structure, weights)
        family = optimal_family(tree, 3)
        assert family[2] == {0, 1}
        assert family[3] == {0, 2, 3}
        profile = nesting_profile(family)
        assert profile.breaks == [3]
        witness = incremental_failure_example(tree, 3)
        assert witness is not None and witness[0] == 3

    @settings(max_examples=50, deadline=None)
    @given(random_tree(max_nodes=12))
    def test_profile_consistency(self, tree) -> None:
        family = optimal_family(tree, 6)
        profile = nesting_profile(family)
        assert 0.0 <= profile.nested_fraction <= 1.0
        assert profile.is_fully_nested == (profile.breaks == [])


class TestStability:
    def test_jaccard_bounds(self, paper_figure4_tree) -> None:
        family = optimal_family(paper_figure4_tree, 8)
        profile = stability_profile(family)
        for row in profile.rows:
            assert 0.0 < row.jaccard <= 1.0
            assert row.carried_over + row.replaced == row.l - 1

    def test_core_and_union(self, paper_figure4_tree) -> None:
        family = optimal_family(paper_figure4_tree, 6)
        profile = stability_profile(family)
        assert profile.core_size >= 1  # the root is always shared
        assert profile.union_size <= paper_figure4_tree.size
        assert profile.union_size >= max(len(s) for s in family.values())

    def test_mean_jaccard_high_on_real_os(self, dblp_engine) -> None:
        """The empirical Section-7 finding: consecutive optima overlap
        heavily (which is what would make pre-computation caches useful)."""
        tree = dblp_engine.complete_os("author", 0)
        family = optimal_family(tree, 15)
        profile = stability_profile(family)
        assert profile.mean_jaccard > 0.6

    def test_empty_family(self) -> None:
        profile = stability_profile({})
        assert profile.mean_jaccard == 1.0
        assert profile.core_size == 0 and profile.union_size == 0
