"""Tests for RNG derivation, timing, and text helpers."""

from __future__ import annotations

import time

from repro.util.rng import derive_rng, make_rng
from repro.util.text import format_table, indent_block, truncate
from repro.util.timing import Stopwatch, TimingBreakdown


class TestRng:
    def test_make_rng_deterministic(self) -> None:
        assert make_rng(42).integers(1_000_000) == make_rng(42).integers(1_000_000)

    def test_derive_rng_deterministic(self) -> None:
        a = derive_rng(7, "dblp", "paper").integers(1_000_000)
        b = derive_rng(7, "dblp", "paper").integers(1_000_000)
        assert a == b

    def test_derive_rng_streams_are_independent(self) -> None:
        a = derive_rng(7, "stream", 1).integers(1_000_000)
        b = derive_rng(7, "stream", 2).integers(1_000_000)
        assert a != b  # astronomically unlikely to collide

    def test_derive_rng_label_order_matters(self) -> None:
        a = derive_rng(7, "a", "b").integers(1_000_000)
        b = derive_rng(7, "b", "a").integers(1_000_000)
        assert a != b


class TestTiming:
    def test_stopwatch_measures_elapsed(self) -> None:
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.005

    def test_breakdown_accumulates(self) -> None:
        breakdown = TimingBreakdown()
        breakdown.add("generation", 1.0)
        breakdown.add("generation", 0.5)
        breakdown.add("computation", 0.25)
        assert breakdown.phases["generation"] == 1.5
        assert breakdown.total == 1.75
        assert breakdown.as_row()["total"] == 1.75

    def test_breakdown_context_manager(self) -> None:
        breakdown = TimingBreakdown()
        with breakdown.time("phase"):
            time.sleep(0.005)
        assert breakdown.phases["phase"] > 0.0


class TestText:
    def test_truncate_short_text_unchanged(self) -> None:
        assert truncate("abc", 10) == "abc"

    def test_truncate_clips_with_ellipsis(self) -> None:
        assert truncate("abcdefgh", 6) == "abc..."[:6]
        assert truncate("abcdefgh", 6).endswith("...")

    def test_truncate_zero_width(self) -> None:
        assert truncate("abc", 0) == ""

    def test_indent_block(self) -> None:
        assert indent_block("a\nb", "> ") == "> a\n> b"

    def test_format_table_alignment(self) -> None:
        table = format_table(["name", "value"], [["x", 1.5], ["longer", 2.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.500" in table and "2.250" in table

    def test_format_table_widens_for_long_cells(self) -> None:
        table = format_table(["h"], [["wide-cell-content"]])
        header, rule, row = table.splitlines()
        assert len(rule) == len("wide-cell-content")
