"""The live mutation subsystem end to end.

Four tiers, mirroring the write path's layering:

* storage — :meth:`HashIndex.remove_row` and transactional
  apply/rollback semantics on the :class:`Database`;
* equivalence — the subsystem's defining property: *mutate then query*
  must equal *rebuild every derived structure from scratch then query*,
  node for node, for both ``keyword_query`` and ``size_l``;
* watches — ``/v1/watch`` continual queries notify exactly when the
  top-k changes, with poll-cursor and cancellation semantics, on the
  single-process dispatcher and across a sharded cluster;
* chaos — concurrent mutators and readers under seeded faults at the
  ``live.apply`` site must never produce a torn answer: every reader
  observes each transaction entirely or not at all.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.engine import SizeLEngine
from repro.core.os_tree import OSNode
from repro.datasets.dblp import small_dblp
from repro.db.index import HashIndex
from repro.db.mutation import Delete, Insert, Update
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.types import ColumnType
from repro.errors import (
    BackendIOError,
    IntegrityError,
    RequestValidationError,
)
from repro.live import APPLY_FAULT_SITE
from repro.reliability import FaultPlan, FaultRule, install, uninstall
from repro.session import Session

KEYWORDS = ["Faloutsos"]


def _index_table() -> Table:
    return Table(
        TableSchema(
            "item",
            [
                Column("item_id", ColumnType.INT),
                Column("bucket", ColumnType.INT, nullable=True),
            ],
            primary_key="item_id",
        )
    )


# --------------------------------------------------------------------- #
# HashIndex.remove_row
# --------------------------------------------------------------------- #
class TestHashIndexRemove:
    def test_remove_keeps_duplicate_values(self) -> None:
        table = _index_table()
        for item_id in range(3):
            table.insert([item_id, 7])  # three rows share bucket 7
        index = HashIndex(table, "bucket")
        index.remove_row(1, (1, 7))
        assert index.lookup(7) == [0, 2]
        index.remove_row(0, (0, 7))
        assert index.lookup(7) == [2]

    def test_remove_last_entry_drops_the_bucket(self) -> None:
        table = _index_table()
        table.insert([1, 7])
        index = HashIndex(table, "bucket")
        index.remove_row(0, (1, 7))
        assert index.lookup(7) == []
        assert index.distinct_values() == 0

    def test_remove_missing_row_is_a_noop(self) -> None:
        table = _index_table()
        table.insert([1, 7])
        index = HashIndex(table, "bucket")
        index.remove_row(99, (99, 7))  # row id never indexed
        index.remove_row(0, (1, 123))  # value never indexed
        assert index.lookup(7) == [0]

    def test_remove_null_is_a_noop(self) -> None:
        table = _index_table()
        table.insert([1, None])
        index = HashIndex(table, "bucket")
        index.remove_row(0, (1, None))
        assert index.distinct_values() == 0

    def test_table_mutations_keep_attached_index_current(self) -> None:
        table = _index_table()
        table.insert([1, 7])
        table.insert([2, 7])
        index = HashIndex(table, "bucket")
        table.update_row(0, {"bucket": 9})
        assert index.lookup(7) == [1]
        assert index.lookup(9) == [0]
        table.delete_row(1)
        assert index.lookup(7) == []


# --------------------------------------------------------------------- #
# Transactions
# --------------------------------------------------------------------- #
@pytest.fixture()
def mutable_db():
    return small_dblp(seed=7).db


class TestTransactions:
    def test_multi_op_commit_is_atomic_and_versioned(self, mutable_db) -> None:
        db = mutable_db
        before = db.data_version
        author_pk = max(row[0] for _rid, row in db.table("author").scan()) + 1
        writes_pk = max(row[0] for _rid, row in db.table("writes").scan()) + 1
        commit = db.apply_transaction(
            [
                Insert("author", {"author_id": author_pk, "name": "Test Author"}),
                Insert(
                    "writes",
                    {"writes_id": writes_pk, "author_id": author_pk, "paper_id": 0},
                ),
            ]
        )
        assert commit.applied == 2
        assert db.data_version == before + 1 == commit.version
        row_id = db.table("author").row_id_for_pk(author_pk)
        assert db.table("author").row(row_id)[1] == "Test Author"

    def test_failed_transaction_rolls_back_every_op(self, mutable_db) -> None:
        db = mutable_db
        before_version = db.data_version
        before_row = db.table("author").row(5)
        before_count = db.table("author").live_count
        with pytest.raises(IntegrityError):
            db.apply_transaction(
                [
                    Update("author", before_row[0], {"name": "Halfway"}),
                    Update("author", -12345, {"name": "No Such Row"}),
                ]
            )
        assert db.data_version == before_version
        assert db.table("author").row(5) == before_row
        assert db.table("author").live_count == before_count

    def test_fk_restrict_blocks_referenced_delete(self, mutable_db) -> None:
        db = mutable_db
        author_pk = db.table("author").row(0)[0]
        with pytest.raises(IntegrityError):
            db.apply_transaction([Delete("author", author_pk)])

    def test_delete_tombstones_without_renumbering(self, mutable_db) -> None:
        db = mutable_db
        writes = db.table("writes")
        slots = len(writes)
        live = writes.live_count
        pk = writes.row(0)[0]
        db.apply_transaction([Delete("writes", pk)])
        assert len(writes) == slots  # slot count never shrinks
        assert writes.live_count == live - 1
        assert writes.row(1) is not None  # neighbours keep their row ids

    def test_insert_violating_fk_rolls_back(self, mutable_db) -> None:
        db = mutable_db
        before = db.data_version
        writes_pk = max(row[0] for _rid, row in db.table("writes").scan()) + 1
        with pytest.raises(IntegrityError):
            db.apply_transaction(
                [
                    Insert(
                        "writes",
                        {
                            "writes_id": writes_pk,
                            "author_id": 10**9,  # dangling FK
                            "paper_id": 0,
                        },
                    )
                ]
            )
        assert db.data_version == before
        assert not db.table("writes").has_pk(writes_pk)

    def test_primary_key_update_is_rejected(self, mutable_db) -> None:
        db = mutable_db
        with pytest.raises((IntegrityError, RequestValidationError)):
            db.apply_transaction([Update("author", 5, {"author_id": 10**9})])


# --------------------------------------------------------------------- #
# Incremental maintenance == full rebuild (the defining property)
# --------------------------------------------------------------------- #
def canonical(node: OSNode) -> tuple:
    """An OS subtree as comparable data: (table, row_id, weight, children)."""
    return (
        node.table,
        node.row_id,
        round(node.weight, 9),
        tuple(sorted(canonical(child) for child in node.children)),
    )


def mutation_script(db) -> list:
    """A script touching every op kind and every maintenance path:
    token-changing updates, a join-edge insert, and a leaf delete."""
    author_pk = max(row[0] for _rid, row in db.table("author").scan()) + 1
    writes_pk = max(row[0] for _rid, row in db.table("writes").scan()) + 1
    removable = db.table("writes").row(3)[0]
    return [
        [Update("author", 5, {"name": "Faloutsos Faloutsos Wizard"})],
        [
            Insert("author", {"author_id": author_pk, "name": "Nova Faloutsos"}),
            Insert(
                "writes",
                {"writes_id": writes_pk, "author_id": author_pk, "paper_id": 2},
            ),
        ],
        [Delete("writes", removable)],
        [Update("paper", 2, {"title": "Reconsidered Indexing Faloutsos"})],
    ]


class TestIncrementalEqualsRebuild:
    @pytest.fixture()
    def mutated_session(self) -> Session:
        session = Session.from_dataset(small_dblp(seed=7))
        for transaction in mutation_script(session.engine.db):
            session.apply_mutations(transaction)
        return session

    @pytest.fixture()
    def rebuilt(self, mutated_session: Session) -> SizeLEngine:
        """Every derived structure rebuilt from the mutated rows: a fresh
        CSR data graph and a fresh inverted index, sharing only the store
        (importance is frozen between compactions by design)."""
        engine = mutated_session.engine
        return SizeLEngine(
            engine.db, engine.gds_by_root, engine.store, theta=engine.theta
        )

    def test_search_matches_equal(self, mutated_session, rebuilt) -> None:
        live = mutated_session.engine.searcher.search(KEYWORDS)
        fresh = rebuilt.searcher.search(KEYWORDS)
        assert [(m.table, m.row_id, m.importance) for m in live] == [
            (m.table, m.row_id, m.importance) for m in fresh
        ]

    def test_keyword_query_equal_node_for_node(
        self, mutated_session, rebuilt
    ) -> None:
        live = mutated_session.keyword_query(KEYWORDS, l=8)
        fresh = rebuilt.keyword_query(KEYWORDS, l=8)
        assert len(live) == len(fresh) > 0
        for a, b in zip(live, fresh):
            assert (a.match.table, a.match.row_id) == (b.match.table, b.match.row_id)
            assert a.result.importance == pytest.approx(b.result.importance)
            assert canonical(a.result.summary.root) == canonical(b.result.summary.root)
            assert a.result.render() == b.result.render()

    def test_size_l_equal_for_dirty_and_clean_subjects(
        self, mutated_session, rebuilt
    ) -> None:
        # author 5 (updated), paper 2 (updated + new join edge),
        # author 17 (untouched control)
        for subject in [("author", 5), ("paper", 2), ("author", 17)]:
            live = mutated_session.size_l(*subject, l=6)
            fresh = rebuilt.size_l(*subject, l=6)
            assert live.importance == pytest.approx(fresh.importance)
            assert canonical(live.summary.root) == canonical(fresh.summary.root)

    def test_complete_os_equal(self, mutated_session, rebuilt) -> None:
        live = mutated_session.complete_os("author", 5)
        fresh = rebuilt.complete_os("author", 5)
        assert canonical(live.root) == canonical(fresh.root)

    def test_compaction_preserves_answers(self, mutated_session) -> None:
        before = [
            canonical(r.result.summary.root)
            for r in mutated_session.keyword_query(KEYWORDS, l=8)
        ]
        live = mutated_session.live
        assert live.stats()["index_dirty"] is True
        live.compact()
        assert live.stats()["index_dirty"] is False
        after = [
            canonical(r.result.summary.root)
            for r in mutated_session.keyword_query(KEYWORDS, l=8)
        ]
        assert before == after


# --------------------------------------------------------------------- #
# Watches (single-process service layer)
# --------------------------------------------------------------------- #
@pytest.fixture()
def dispatcher():
    from repro.service.deployment import Deployment
    from repro.service.dispatch import ServiceDispatcher

    deployment = Deployment()
    deployment.add("dblp", named="dblp", seed=7, scale=0.5)
    try:
        yield ServiceDispatcher(deployment)
    finally:
        deployment.close()


class TestWatchEndpoints:
    def test_watch_notifies_exactly_when_top_k_changes(self, dispatcher) -> None:
        status, watch = dispatcher.dispatch_safe(
            "/v1/watch", {"dataset": "dblp", "keywords": "faloutsos", "k": 4}
        )
        assert status == 200 and watch["dataset_version"] == 0
        baseline = [(r["table"], r["row_id"]) for r in watch["top_k"]]
        assert baseline == [("author", 0), ("author", 1), ("author", 2)]

        # a write that cannot affect the watched tokens: no notification
        status, body = dispatcher.dispatch_safe(
            "/v1/mutate",
            {
                "dataset": "dblp",
                "operations": [
                    {"op": "update", "table": "paper", "pk": 0,
                     "set": {"title": "Untokenized Revision"}}
                ],
            },
        )
        assert status == 200 and body["watch_notifications"] == 0

        # a write that promotes a new subject into the top-4
        status, body = dispatcher.dispatch_safe(
            "/v1/mutate",
            {
                "dataset": "dblp",
                "operations": [
                    {"op": "update", "table": "author", "pk": 5,
                     "set": {"name": "Faloutsos Faloutsos Faloutsos"}}
                ],
            },
        )
        assert status == 200 and body["dataset_version"] == 2
        assert body["watch_notifications"] == 1
        assert body["dirty_subjects"] == {"author": [5]}

        status, poll = dispatcher.dispatch_safe(
            "/v1/watch/poll",
            {"dataset": "dblp", "watch_id": watch["watch_id"], "timeout_ms": 0},
        )
        assert status == 200
        [notification] = poll["notifications"]
        assert notification["dataset_version"] == 2
        new_top = [(r["table"], r["row_id"]) for r in notification["top_k"]]
        assert new_top != baseline
        assert ("author", 5) in new_top

        # cursor semantics: nothing after the delivered version
        status, empty = dispatcher.dispatch_safe(
            "/v1/watch/poll",
            {
                "dataset": "dblp",
                "watch_id": watch["watch_id"],
                "after_version": notification["dataset_version"],
                "timeout_ms": 0,
            },
        )
        assert status == 200 and empty["notifications"] == []

    def test_cancel_then_poll_is_404(self, dispatcher) -> None:
        _, watch = dispatcher.dispatch_safe(
            "/v1/watch", {"dataset": "dblp", "keywords": "faloutsos", "k": 2}
        )
        status, body = dispatcher.dispatch_safe(
            "/v1/watch/cancel",
            {"dataset": "dblp", "watch_id": watch["watch_id"]},
        )
        assert (status, body["cancelled"]) == (200, True)
        status, body = dispatcher.dispatch_safe(
            "/v1/watch/poll",
            {"dataset": "dblp", "watch_id": watch["watch_id"], "timeout_ms": 0},
        )
        assert status == 404
        assert body["error"]["type"] == "UnknownWatchError"

    def test_queries_carry_the_dataset_version(self, dispatcher) -> None:
        status, before = dispatcher.dispatch_safe(
            "/v1/query", {"dataset": "dblp", "keywords": "faloutsos", "page_size": 2}
        )
        assert (status, before["dataset_version"]) == (200, 0)
        dispatcher.dispatch_safe(
            "/v1/mutate",
            {
                "dataset": "dblp",
                "operations": [
                    {"op": "update", "table": "author", "pk": 9,
                     "set": {"name": "Renamed Researcher"}}
                ],
            },
        )
        status, after = dispatcher.dispatch_safe(
            "/v1/query", {"dataset": "dblp", "keywords": "faloutsos", "page_size": 2}
        )
        assert (status, after["dataset_version"]) == (200, 1)

    def test_mutate_validation_is_pinned(self, dispatcher) -> None:
        status, body = dispatcher.dispatch_safe(
            "/v1/mutate",
            {"dataset": "dblp", "operations": [{"op": "update", "table": "author"}]},
        )
        assert status == 400
        assert "operations[0]" in body["error"]["message"]


# --------------------------------------------------------------------- #
# Sharded topology: cluster answers == single-process answers
# --------------------------------------------------------------------- #
_MUTATION = {
    "dataset": "dblp",
    "operations": [
        {"op": "update", "table": "author", "pk": 5,
         "set": {"name": "Faloutsos Faloutsos Wizard"}},
        {"op": "insert", "table": "author",
         "values": {"author_id": 10_000, "name": "Nova Faloutsos"}},
        {"op": "insert", "table": "writes",
         "values": {"writes_id": 10_000, "author_id": 10_000, "paper_id": 2}},
    ],
}

#: Entry fields stable across processes (stats carries wall-clock noise).
_STABLE = ("rank", "table", "row_id", "importance", "l", "selected_uids", "rendered")


def _stable(entry: dict) -> dict:
    return {key: entry[key] for key in _STABLE}


class TestClusterLive:
    @pytest.fixture(scope="class")
    def cluster(self):
        from repro.cluster import Cluster, DatasetSpec

        specs = [DatasetSpec(name="dblp", database="dblp", seed=7, scale=0.5)]
        with Cluster(specs, shards=2, request_timeout=30.0) as cluster:
            yield cluster

    @pytest.fixture(scope="class")
    def reference(self):
        from repro.service.deployment import Deployment
        from repro.service.dispatch import ServiceDispatcher

        deployment = Deployment()
        deployment.add("dblp", named="dblp", seed=7, scale=0.5)
        try:
            yield ServiceDispatcher(deployment)
        finally:
            deployment.close()

    def test_mutated_cluster_equals_mutated_single_process(
        self, cluster, reference
    ) -> None:
        query = {"dataset": "dblp", "keywords": "faloutsos", "options": {"l": 8}}
        for target in (cluster, reference):
            status, body = target.dispatch_safe("/v1/mutate", _MUTATION)
            assert status == 200 and body["applied"] == 3
        status, sharded = cluster.dispatch_safe("/v1/query", query)
        assert status == 200
        status, single = reference.dispatch_safe("/v1/query", query)
        assert status == 200
        assert sharded["dataset_version"] == single["dataset_version"] == 1
        assert [_stable(e) for e in sharded["results"]] == [
            _stable(e) for e in single["results"]
        ]
        assert sharded["total_matches"] == single["total_matches"]

    def test_watch_across_shards(self, cluster, reference) -> None:
        # k beyond the current match count: any new matching subject must
        # enter the top-k and trigger a notification
        status, watch = cluster.dispatch_safe(
            "/v1/watch", {"dataset": "dblp", "keywords": "faloutsos", "k": 10}
        )
        assert status == 200
        status, body = cluster.dispatch_safe(
            "/v1/mutate",
            {
                "dataset": "dblp",
                "operations": [
                    {"op": "update", "table": "author", "pk": 7,
                     "set": {"name": "Faloutsos Faloutsos Faloutsos Prime"}}
                ],
            },
        )
        assert status == 200
        status, poll = cluster.dispatch_safe(
            "/v1/watch/poll",
            {"dataset": "dblp", "watch_id": watch["watch_id"], "timeout_ms": 2000},
        )
        assert status == 200
        [notification] = poll["notifications"]
        assert ("author", 7) in [
            (r["table"], r["row_id"]) for r in notification["top_k"]
        ]
        status, body = cluster.dispatch_safe(
            "/v1/watch/cancel",
            {"dataset": "dblp", "watch_id": watch["watch_id"]},
        )
        assert (status, body["cancelled"]) == (200, True)

    def test_unknown_watch_is_404_cluster_wide(self, cluster) -> None:
        status, body = cluster.dispatch_safe(
            "/v1/watch/poll",
            {"dataset": "dblp", "watch_id": "deadbeef", "timeout_ms": 0},
        )
        assert status == 404
        assert body["error"]["type"] == "UnknownWatchError"

    def test_live_gauges_merge_across_shards(self, cluster) -> None:
        stats = cluster.router.live_stats_by_dataset()
        assert stats["dblp"]["dataset_version"] >= 1


# --------------------------------------------------------------------- #
# Chaos: concurrent writers and readers, faults armed at live.apply
# --------------------------------------------------------------------- #
class TestChaosHammer:
    def test_no_torn_answers_under_seeded_faults(self) -> None:
        session = Session.from_dataset(small_dblp(seed=7))
        db = session.engine.db
        # one author and one of their papers: a transaction stamps BOTH
        # with the same epoch tag, so any reader mixing epochs is torn
        author_row = 5
        author_pk = db.table("author").row(author_row)[0]
        paper_row = next(
            row[2] for _rid, row in db.table("writes").scan()
            if row[1] == author_pk
        )
        paper_pk = db.table("paper").row(paper_row)[0]

        def epoch_of(text: str) -> int | None:
            head, _, tail = text.partition(" ")
            return int(tail.split()[0]) if head == "Epoch" else None

        readers = 3
        stop = threading.Event()
        barrier = threading.Barrier(readers + 1)
        errors: list[str] = []
        checks = [0] * readers
        applied: list[int] = []
        aborted: list[int] = []

        def writer() -> None:
            barrier.wait()
            for epoch in range(40):
                try:
                    session.apply_mutations(
                        [
                            Update("author", author_pk,
                                   {"name": f"Epoch {epoch} Zarathustra"}),
                            Update("paper", paper_pk,
                                   {"title": f"Epoch {epoch} Treatise"}),
                        ]
                    )
                    applied.append(epoch)
                except BackendIOError:
                    aborted.append(epoch)  # injected: clean whole-txn abort
            stop.set()

        def reader(slot: int) -> None:
            barrier.wait()
            # keep checking past `stop` until this reader has seen enough
            # iterations — a fast writer must not void the test
            while (not stop.is_set() or checks[slot] < 5) and not errors:
                with session.guard().read():
                    summary = session.complete_os("author", author_row)
                    name_epoch = epoch_of(db.table("author").row(author_row)[1])
                    title_epoch = epoch_of(db.table("paper").row(paper_row)[1])
                    rendered = summary.render()
                # the guard pins one version across the OS build, the raw
                # row reads, AND the render: all four epochs must agree
                # (before the first commit all four are None — also agreed)
                lines = rendered.splitlines()
                rendered_name = epoch_of(lines[0].split(": ", 1)[1])
                treatise = next(
                    (line for line in lines if "Treatise" in line), None
                )
                rendered_title = (
                    epoch_of(treatise.split(": ", 1)[1]) if treatise else None
                )
                epochs = {name_epoch, title_epoch, rendered_name, rendered_title}
                if epochs != {None}:
                    checks[slot] += 1
                if len(epochs) != 1:
                    errors.append(
                        f"torn answer: name={name_epoch} title={title_epoch} "
                        f"rendered=({rendered_name}, {rendered_title})"
                    )

        install(
            FaultPlan(
                [FaultRule(site=APPLY_FAULT_SITE, probability=0.35)], seed=11
            )
        )
        try:
            threads = [threading.Thread(target=writer)] + [
                threading.Thread(target=reader, args=(slot,))
                for slot in range(readers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        finally:
            uninstall()
        assert not errors, errors[0]
        assert all(count >= 5 for count in checks)
        # the plan actually exercised both outcomes, and the version
        # counts exactly the successful commits
        assert applied and aborted
        assert db.data_version == len(applied)
        final_name = db.table("author").row(author_row)[1]
        final_title = db.table("paper").row(paper_row)[1]
        assert epoch_of(final_name) == epoch_of(final_title) == applied[-1]

    def test_aborted_transaction_leaves_watches_silent(self) -> None:
        session = Session.from_dataset(small_dblp(seed=7))
        live = session.live_state()
        watch, _version = live.register_watch(["faloutsos"], 3)
        install(FaultPlan([FaultRule(site=APPLY_FAULT_SITE)], seed=1))
        try:
            with pytest.raises(BackendIOError):
                session.apply_mutations(
                    [Update("author", 5, {"name": "Faloutsos Faloutsos Peak"})]
                )
        finally:
            uninstall()
        assert session.dataset_version == 0
        _watch, notifications, version = live.poll_watch(watch.watch_id, 0, 0.0)
        assert notifications == [] and version == 0
