"""Tests for the Section-6 experiment harness."""

from __future__ import annotations

import pytest

from repro.core.bottom_up import bottom_up_size_l
from repro.core.dp import optimal_size_l
from repro.evaluation.effectiveness import (
    effectiveness_experiment,
    greedy_effectiveness_impact,
)
from repro.evaluation.efficiency import (
    breakdown_experiment,
    efficiency_experiment,
    scalability_experiment,
)
from repro.evaluation.evaluators import (
    EvaluatorConfig,
    SimulatedEvaluator,
    make_panel,
    reweight,
)
from repro.evaluation.quality import quality_experiment
from repro.evaluation.reporting import pivot_table, rows_to_table
from repro.evaluation.snippet_baseline import snippet_overlap_experiment, static_snippet


@pytest.fixture(scope="module")
def author_trees(dblp_engine):
    return [dblp_engine.complete_os("author", rid) for rid in (0, 1, 2)]


class TestSimulatedEvaluator:
    def test_noise_is_deterministic(self, dblp_store) -> None:
        judge = SimulatedEvaluator(3, dblp_store)
        assert judge.private_importance("author", 5) == judge.private_importance(
            "author", 5
        )

    def test_judges_differ(self, dblp_store) -> None:
        a = SimulatedEvaluator(1, dblp_store)
        b = SimulatedEvaluator(2, dblp_store)
        assert a.private_importance("author", 5) != b.private_importance("author", 5)

    def test_zero_noise_matches_reference(self, dblp_store, author_trees) -> None:
        config = EvaluatorConfig(noise_sigma=0.0, depth1_bias=0.0)
        judge = SimulatedEvaluator(0, dblp_store, config)
        gold = judge.gold_selection(author_trees[0], 10)
        reference = optimal_size_l(author_trees[0], 10).selected_uids
        assert gold == reference

    def test_gold_selection_is_connected(self, dblp_store, author_trees) -> None:
        judge = SimulatedEvaluator(4, dblp_store)
        gold = judge.gold_selection(author_trees[0], 8)
        tree = author_trees[0]
        assert tree.root.uid in gold
        for uid in gold:
            node = tree.node(uid)
            if node.parent is not None:
                assert node.parent.uid in gold

    def test_depth1_bias_prefers_shallow_nodes(self, dblp_store, author_trees) -> None:
        tree = author_trees[0]
        flat = SimulatedEvaluator(0, dblp_store, EvaluatorConfig(noise_sigma=0.0, depth1_bias=0.0))
        biased = SimulatedEvaluator(0, dblp_store, EvaluatorConfig(noise_sigma=0.0, depth1_bias=50.0))
        depth1_flat = sum(1 for uid in flat.gold_selection(tree, 6) if tree.node(uid).depth == 1)
        depth1_biased = sum(
            1 for uid in biased.gold_selection(tree, 6) if tree.node(uid).depth == 1
        )
        assert depth1_biased >= depth1_flat

    def test_reweight_preserves_uids(self, author_trees) -> None:
        clone = reweight(author_trees[0], lambda node: 1.0)
        assert {n.uid for n in clone.nodes} == {n.uid for n in author_trees[0].nodes}
        assert all(n.weight == 1.0 for n in clone.nodes)


class TestEffectiveness:
    def test_perfect_agreement_with_noiseless_judges(self, dblp_store, author_trees) -> None:
        config = EvaluatorConfig(noise_sigma=0.0, depth1_bias=0.0)
        panel = [SimulatedEvaluator(0, dblp_store, config)]
        rows = effectiveness_experiment(
            author_trees, {"ref": dblp_store}, panel, [5, 10]
        )
        for row in rows:
            assert row.effectiveness == pytest.approx(100.0)

    def test_effectiveness_within_bounds(self, dblp_store, author_trees) -> None:
        panel = make_panel(3, dblp_store)
        rows = effectiveness_experiment(author_trees, {"ref": dblp_store}, panel, [5])
        for row in rows:
            assert 0.0 <= row.effectiveness <= 100.0
            assert row.n_observations == 9  # 3 trees x 3 judges

    def test_greedy_impact_driver(self, dblp_store, author_trees) -> None:
        panel = make_panel(2, dblp_store)
        rows = greedy_effectiveness_impact(
            author_trees,
            dblp_store,
            panel,
            [5],
            {"optimal": optimal_size_l, "bottom_up": bottom_up_size_l},
        )
        settings = {row.setting for row in rows}
        assert settings == {"optimal", "bottom_up"}


class TestQuality:
    def test_ratios_at_most_100(self, dblp_engine, author_trees) -> None:
        pairs = []
        for rid, tree in zip((0, 1, 2), author_trees):
            prelim, _ = dblp_engine.prelim_os("author", rid, 20)
            pairs.append((tree, prelim))
        rows = quality_experiment(pairs, [5, 10, 20])
        assert rows, "no quality rows produced"
        for row in rows:
            assert row.quality <= 100.0 + 1e-6
            assert row.quality > 50.0  # greedy methods are decent here

    def test_row_grid_complete(self, dblp_engine) -> None:
        tree = dblp_engine.complete_os("author", 1)
        prelim, _ = dblp_engine.prelim_os("author", 1, 10)
        rows = quality_experiment([(tree, prelim)], [5, 10])
        combos = {(r.method, r.source, r.l) for r in rows}
        assert len(combos) == 2 * 2 * 2


class TestEfficiency:
    def test_timing_rows(self, dblp_engine) -> None:
        tree = dblp_engine.complete_os("author", 1)
        prelim, _ = dblp_engine.prelim_os("author", 1, 10)
        rows = efficiency_experiment([(tree, prelim)], [5, 10])
        assert all(row.seconds >= 0 or row.seconds != row.seconds for row in rows)
        methods = {row.method for row in rows}
        assert methods == {"bottom_up", "top_path", "optimal"}

    def test_dp_budget_skips(self, dblp_engine) -> None:
        tree = dblp_engine.complete_os("author", 0)
        prelim, _ = dblp_engine.prelim_os("author", 0, 10)
        rows = efficiency_experiment([(tree, prelim)], [10], dp_budget_nodes=1)
        optimal_complete = next(
            r for r in rows if r.method == "optimal" and r.source == "complete"
        )
        assert optimal_complete.seconds != optimal_complete.seconds  # NaN

    def test_scalability_rows_sorted_by_size(self, dblp_engine, author_trees) -> None:
        rows = scalability_experiment(author_trees, l=5)
        sizes = [r.mean_os_size for r in rows if r.method == "bottom_up"]
        assert sizes == sorted(sizes)

    def test_breakdown_rows(self, dblp_engine) -> None:
        rows = breakdown_experiment(dblp_engine, "author", [1, 2], [5])
        labels = {row.label for row in rows}
        assert any("database" in label for label in labels)
        assert any("prelim" in label for label in labels)
        db_rows = [r for r in rows if "complete[database]" in r.label]
        assert all(r.io_accesses > 0 for r in db_rows)


class TestSnippetBaseline:
    def test_snippet_contains_root_and_k_nodes(self, author_trees) -> None:
        snippet = static_snippet(author_trees[0], k=3, seed=1)
        assert author_trees[0].root.uid in snippet
        assert len(snippet) == 4

    def test_overlap_is_low(self, dblp_store, author_trees) -> None:
        """The paper: snippets recover 0, exceptionally 1, gold tuples."""
        panel = make_panel(3, dblp_store)
        rows = snippet_overlap_experiment(author_trees, panel)
        mean_overlap = sum(r.overlap_tuples for r in rows) / len(rows)
        assert mean_overlap <= 1.0

    def test_snippet_deterministic(self, author_trees) -> None:
        assert static_snippet(author_trees[0], seed=5) == static_snippet(
            author_trees[0], seed=5
        )


class TestReporting:
    def test_rows_to_table(self) -> None:
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.25}]
        table = rows_to_table(rows)
        assert "a" in table.splitlines()[0]
        assert len(table.splitlines()) == 4

    def test_pivot_table(self) -> None:
        rows = [
            {"l": 5, "setting": "x", "val": 1.0},
            {"l": 5, "setting": "y", "val": 2.0},
            {"l": 10, "setting": "x", "val": 3.0},
        ]
        table = pivot_table(rows, index="l", columns="setting", value="val")
        assert "x" in table.splitlines()[0] and "y" in table.splitlines()[0]
        assert "nan" in table  # missing (10, y) cell

    def test_empty_rows(self) -> None:
        assert rows_to_table([]) == "(no rows)"
        assert pivot_table([], index="a", columns="b", value="c") == "(no rows)"

    def test_dataclass_rows(self, dblp_store, author_trees) -> None:
        panel = make_panel(1, dblp_store)
        rows = effectiveness_experiment(author_trees, {"ref": dblp_store}, panel, [5])
        assert "effectiveness" in rows_to_table(rows)
