"""Tests for column types, validation, and schema objects."""

from __future__ import annotations

import pytest

from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.types import ColumnType
from repro.errors import SchemaError, TypeMismatchError, UnknownColumnError


class TestColumnType:
    def test_int_accepts_int(self) -> None:
        assert ColumnType.INT.validate(5, nullable=False) == 5

    def test_int_rejects_bool(self) -> None:
        with pytest.raises(TypeMismatchError):
            ColumnType.INT.validate(True, nullable=False)

    def test_int_rejects_float(self) -> None:
        with pytest.raises(TypeMismatchError):
            ColumnType.INT.validate(1.5, nullable=False)

    def test_float_widens_int(self) -> None:
        value = ColumnType.FLOAT.validate(3, nullable=False)
        assert value == 3.0 and isinstance(value, float)

    def test_float_rejects_bool(self) -> None:
        with pytest.raises(TypeMismatchError):
            ColumnType.FLOAT.validate(False, nullable=False)

    def test_text_rejects_numbers(self) -> None:
        with pytest.raises(TypeMismatchError):
            ColumnType.TEXT.validate(42, nullable=False)

    def test_bool_rejects_int(self) -> None:
        with pytest.raises(TypeMismatchError):
            ColumnType.BOOL.validate(1, nullable=False)

    def test_null_requires_nullable(self) -> None:
        assert ColumnType.TEXT.validate(None, nullable=True) is None
        with pytest.raises(TypeMismatchError):
            ColumnType.TEXT.validate(None, nullable=False)

    @pytest.mark.parametrize(
        ("col_type", "text", "expected"),
        [
            (ColumnType.INT, "12", 12),
            (ColumnType.FLOAT, "1.5", 1.5),
            (ColumnType.TEXT, "abc", "abc"),
            (ColumnType.BOOL, "true", True),
            (ColumnType.BOOL, "0", False),
            (ColumnType.INT, "", None),
        ],
    )
    def test_parse_text(self, col_type: ColumnType, text: str, expected: object) -> None:
        assert col_type.parse_text(text) == expected

    def test_parse_text_bad_bool(self) -> None:
        with pytest.raises(TypeMismatchError):
            ColumnType.BOOL.parse_text("maybe")


class TestColumn:
    def test_invalid_name_rejected(self) -> None:
        with pytest.raises(SchemaError):
            Column("has space", ColumnType.TEXT)
        with pytest.raises(SchemaError):
            Column("", ColumnType.TEXT)


def _schema() -> TableSchema:
    return TableSchema(
        "person",
        [
            Column("person_id", ColumnType.INT),
            Column("name", ColumnType.TEXT, text_searchable=True),
            Column("team_id", ColumnType.INT, nullable=True),
            Column("comment", ColumnType.TEXT, nullable=True, display=False),
        ],
        primary_key="person_id",
        foreign_keys=[ForeignKey("team_id", "team", "team_id")],
    )


class TestTableSchema:
    def test_column_index_lookup(self) -> None:
        schema = _schema()
        assert schema.column_index("name") == 1
        with pytest.raises(UnknownColumnError):
            schema.column_index("missing")

    def test_duplicate_columns_rejected(self) -> None:
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", ColumnType.INT), Column("a", ColumnType.INT)],
                primary_key="a",
            )

    def test_unknown_pk_rejected(self) -> None:
        with pytest.raises(UnknownColumnError):
            TableSchema("t", [Column("a", ColumnType.INT)], primary_key="b")

    def test_nullable_pk_rejected(self) -> None:
        with pytest.raises(SchemaError):
            TableSchema(
                "t", [Column("a", ColumnType.INT, nullable=True)], primary_key="a"
            )

    def test_unknown_fk_column_rejected(self) -> None:
        with pytest.raises(UnknownColumnError):
            TableSchema(
                "t",
                [Column("a", ColumnType.INT)],
                primary_key="a",
                foreign_keys=[ForeignKey("missing", "other", "id")],
            )

    def test_invalid_table_name_rejected(self) -> None:
        with pytest.raises(SchemaError):
            TableSchema("bad name", [Column("a", ColumnType.INT)], primary_key="a")

    def test_display_columns_exclude_keys_and_hidden(self) -> None:
        schema = _schema()
        names = [c.name for c in schema.display_columns()]
        # PK, FK columns and display=False columns are structural, not content.
        assert names == ["name"]

    def test_searchable_columns(self) -> None:
        assert [c.name for c in _schema().searchable_columns()] == ["name"]

    def test_pk_index(self) -> None:
        assert _schema().pk_index == 0
