"""Tests for the multi-dataset Deployment registry."""

from __future__ import annotations

import threading

import pytest

from repro.core.options import ParallelConfig, QueryOptions
from repro.errors import (
    ServiceError,
    SnapshotMismatchError,
    UnknownDatasetError,
)
from repro.service import Deployment
from repro.session import Session


class TestRegistry:
    def test_lazy_build_and_reuse(self, dblp) -> None:
        deployment = Deployment().add("dblp", dataset=dblp)
        assert deployment.describe("dblp")["built"] is False
        session = deployment.session("dblp")
        assert deployment.describe("dblp")["built"] is True
        assert deployment.session("dblp") is session  # built exactly once

    def test_concurrent_first_requests_share_one_build(self, dblp) -> None:
        deployment = Deployment().add("dblp", dataset=dblp)
        barrier = threading.Barrier(4)
        sessions: list[Session] = []
        lock = threading.Lock()

        def fetch() -> None:
            barrier.wait()
            session = deployment.session("dblp")
            with lock:
                sessions.append(session)

        threads = [threading.Thread(target=fetch) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(sessions) == 4
        assert all(s is sessions[0] for s in sessions)

    def test_unknown_dataset_raises_with_hint(self, dblp) -> None:
        deployment = Deployment().add("dblp", dataset=dblp)
        with pytest.raises(UnknownDatasetError, match="'tpch'.*dblp"):
            deployment.session("tpch")

    def test_duplicate_name_rejected(self, dblp) -> None:
        deployment = Deployment().add("dblp", dataset=dblp)
        with pytest.raises(ServiceError, match="already registered"):
            deployment.add("dblp", dataset=dblp)

    def test_exactly_one_source_required(self, dblp) -> None:
        with pytest.raises(ServiceError, match="exactly one"):
            Deployment().add("x", dataset=dblp, named="dblp")
        with pytest.raises(ServiceError, match="exactly one"):
            Deployment().add("x")

    def test_session_presets_flow_through(self, dblp) -> None:
        deployment = Deployment().add(
            "dblp",
            dataset=dblp,
            cache_size=7,
            defaults=QueryOptions(l=19),
            parallel=ParallelConfig(workers=3, ordered=False),
        )
        session = deployment.session("dblp")
        assert session.cache.max_subjects == 7
        assert session.defaults.l == 19
        assert session.parallel == ParallelConfig(workers=3, ordered=False)

    def test_membership_and_iteration(self, dblp, tpch) -> None:
        deployment = Deployment().add("dblp", dataset=dblp).add("tpch", dataset=tpch)
        assert "dblp" in deployment and "oracle" not in deployment
        assert list(deployment) == ["dblp", "tpch"]
        assert len(deployment) == 2

    def test_remove_closes_and_forgets(self, dblp) -> None:
        deployment = Deployment().add("dblp", dataset=dblp)
        deployment.session("dblp")
        deployment.remove("dblp")
        assert "dblp" not in deployment
        with pytest.raises(UnknownDatasetError):
            deployment.session("dblp")

    def test_shared_builder_is_copied_per_entry(self, dblp, dblp_snapshot) -> None:
        """One builder registered under two names must not cross-contaminate
        (cache_size / snapshot leaking from entry to entry)."""
        from repro.core.builder import EngineBuilder

        shared = EngineBuilder.from_dataset(dblp)
        deployment = (
            Deployment()
            .add("a", builder=shared, cache_size=5, snapshot=dblp_snapshot.path)
            .add("b", builder=shared)
        )
        session_a = deployment.session("a")
        session_b = deployment.session("b")
        assert session_a.cache.max_subjects == 5
        assert session_a.cache.snapshot is not None
        assert session_b.cache.max_subjects == 64  # the stock default
        assert session_b.cache.snapshot is None  # no inherited snapshot
        assert shared._cache_size == 64  # the caller's builder untouched
        assert shared._snapshot is None

    def test_persist_failure_outside_reload_is_500(self, dblp, tmp_path) -> None:
        """A broken snapshot path hit by the lazy first build is a server
        problem (500), not the reload contract's 409."""
        from repro.service import ServiceDispatcher

        deployment = Deployment().add(
            "dblp", dataset=dblp, snapshot=tmp_path / "missing.d"
        )
        status, body = ServiceDispatcher(deployment).dispatch_safe(
            "/v1/query", {"dataset": "dblp", "keywords": ["x"]}
        )
        assert status == 500
        assert body["error"]["type"] == "SnapshotFormatError"

    def test_add_session_registers_prebuilt(self, dblp) -> None:
        session = Session.from_dataset(dblp)
        deployment = Deployment().add_session("live", session)
        assert deployment.session("live") is session
        assert deployment.describe("live")["built"] is True


class TestIndependence:
    def test_invalidate_is_scoped_to_one_dataset(self, dblp, tpch) -> None:
        deployment = Deployment().add("dblp", dataset=dblp).add("tpch", dataset=tpch)
        options = QueryOptions(l=5)
        deployment.session("dblp").keyword_query("Faloutsos", options=options)
        deployment.session("tpch").keyword_query("Supplier#000001", options=options)
        assert deployment.session("tpch").cache_stats().cached_subjects > 0

        deployment.invalidate("dblp")
        assert deployment.session("dblp").cache_stats().cached_subjects == 0
        assert deployment.session("tpch").cache_stats().cached_subjects > 0

    def test_stats_are_per_dataset(self, dblp, tpch) -> None:
        deployment = Deployment().add("dblp", dataset=dblp).add("tpch", dataset=tpch)
        deployment.session("dblp").size_l("author", 1, 5)
        stats = deployment.stats("dblp")
        assert stats["dataset"] == "dblp"
        assert stats["cache"]["misses"] >= 1
        assert deployment.stats("tpch")["cache"]["misses"] == 0

    def test_aggregate_stats_do_not_build_unbuilt_entries(self, dblp, tpch) -> None:
        """GET /v1/stats (no dataset) is a monitoring probe: it must not
        synthesize every hosted dataset on a freshly booted server."""
        from repro.service import ServiceDispatcher

        deployment = Deployment().add("dblp", dataset=dblp).add("tpch", dataset=tpch)
        deployment.session("dblp")  # build exactly one
        body = ServiceDispatcher(deployment).dispatch("/v1/stats")
        assert "cache" in body["dblp"]  # built: full serving stats
        assert body["tpch"]["built"] is False  # unbuilt: metadata only
        assert deployment.describe("tpch")["built"] is False  # still unbuilt

    def test_built_session_fast_path_skips_the_entry_lock(self, dblp) -> None:
        """Serving must not stall behind a slow entry-lock holder once the
        session exists (e.g. a reload hashing a large snapshot)."""
        deployment = Deployment().add("dblp", dataset=dblp)
        session = deployment.session("dblp")
        entry = deployment._entry("dblp")
        assert entry.lock.acquire()  # simulate a long-held entry lock
        try:
            assert deployment.session("dblp") is session  # no deadlock
        finally:
            entry.lock.release()


class TestReload:
    def test_reload_requires_snapshot_path(self, dblp) -> None:
        deployment = Deployment().add("dblp", dataset=dblp)
        with pytest.raises(ServiceError, match="no snapshot path"):
            deployment.reload("dblp")

    def test_reload_reattaches_and_counts(self, dblp, dblp_snapshot) -> None:
        deployment = Deployment().add(
            "dblp", dataset=dblp, snapshot=dblp_snapshot.path
        )
        session = deployment.session("dblp")
        before = session.cache.snapshot
        report = deployment.reload("dblp")
        assert report["reloads"] == 1
        assert report["subjects"] == len(dblp_snapshot)
        # a fresh Snapshot object is attached (re-opened from the path)
        assert session.cache.snapshot is not before
        assert deployment.describe("dblp")["reloads"] == 1

    def test_reload_restores_masked_disk_entries(self, dblp, dblp_snapshot) -> None:
        options = QueryOptions(l=6, source="complete")
        deployment = Deployment().add(
            "dblp", dataset=dblp, snapshot=dblp_snapshot.path, cache_size=2
        )
        session = deployment.session("dblp")
        session.size_l("author", 1, options=options)
        assert session.cache_stats().disk_hits == 1

        # invalidate masks the snapshot entry: the next request regenerates
        deployment.invalidate("dblp", "author", 1)
        session.size_l("author", 1, options=options)
        assert session.cache_stats().tree_generations == 1

        # reload re-validates and re-enables the whole disk tier
        deployment.reload("dblp")
        session.invalidate()  # memory out; but a reloaded tier serves again
        deployment.reload("dblp")
        session.size_l("author", 1, options=options)
        assert session.cache_stats().disk_hits == 2

    def test_failed_reload_keeps_serving(self, dblp, tpch, dblp_snapshot) -> None:
        """A mismatched replacement snapshot must not take the entry down."""
        deployment = Deployment().add("tpch", dataset=tpch)
        session = deployment.session("tpch")
        # point the entry at a snapshot of the WRONG dataset
        deployment._entry("tpch").snapshot_path = dblp_snapshot.path
        with pytest.raises(SnapshotMismatchError):
            deployment.reload("tpch")
        # still serving, disk tier unchanged (never attached)
        assert session.cache.snapshot is None
        results = session.keyword_query("Supplier#000001", options=QueryOptions(l=5))
        assert results


class TestLifecycle:
    def test_close_is_idempotent_and_keeps_entries(self, dblp) -> None:
        deployment = Deployment().add("dblp", dataset=dblp)
        deployment.session("dblp")
        deployment.close()
        deployment.close()
        assert "dblp" in deployment  # recipe survives; session still usable
        assert deployment.session("dblp").size_l("author", 0, 4).size == 4

    def test_context_manager(self, dblp) -> None:
        with Deployment().add("dblp", dataset=dblp) as deployment:
            deployment.session("dblp")
