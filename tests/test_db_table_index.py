"""Tests for row storage and hash indexes."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.index import HashIndex
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.types import ColumnType
from repro.errors import IntegrityError


def _table() -> Table:
    return Table(
        TableSchema(
            "item",
            [
                Column("item_id", ColumnType.INT),
                Column("label", ColumnType.TEXT),
                Column("bucket", ColumnType.INT, nullable=True),
            ],
            primary_key="item_id",
        )
    )


class TestTable:
    def test_insert_by_mapping_and_sequence(self) -> None:
        table = _table()
        rid0 = table.insert({"item_id": 1, "label": "a", "bucket": 10})
        rid1 = table.insert([2, "b", None])
        assert (rid0, rid1) == (0, 1)
        assert table.row(0) == (1, "a", 10)
        assert table.row(1) == (2, "b", None)

    def test_duplicate_pk_rejected(self) -> None:
        table = _table()
        table.insert([1, "a", None])
        with pytest.raises(IntegrityError):
            table.insert([1, "b", None])

    def test_unknown_column_in_mapping_rejected(self) -> None:
        table = _table()
        with pytest.raises(IntegrityError):
            table.insert({"item_id": 1, "label": "a", "oops": 1})

    def test_wrong_arity_rejected(self) -> None:
        table = _table()
        with pytest.raises(IntegrityError):
            table.insert([1, "a"])

    def test_missing_mapping_value_defaults_to_null(self) -> None:
        table = _table()
        table.insert({"item_id": 1, "label": "a"})  # bucket nullable
        assert table.value(0, "bucket") is None
        with pytest.raises(IntegrityError):
            table.insert({"item_id": 2})  # label is not nullable

    def test_pk_lookup(self) -> None:
        table = _table()
        table.insert([5, "x", None])
        assert table.row_id_for_pk(5) == 0
        assert table.pk_of_row(0) == 5
        assert table.has_pk(5) and not table.has_pk(6)

    def test_scan_in_insertion_order(self) -> None:
        table = _table()
        for i in range(5):
            table.insert([i, f"r{i}", None])
        assert [rid for rid, _row in table.scan()] == list(range(5))

    def test_row_as_dict(self) -> None:
        table = _table()
        table.insert([1, "a", 2])
        assert table.row_as_dict(0) == {"item_id": 1, "label": "a", "bucket": 2}


class TestHashIndex:
    def test_lookup_matches_scan(self) -> None:
        table = _table()
        for i in range(20):
            table.insert([i, "even" if i % 2 == 0 else "odd", i % 3])
        index = HashIndex(table, "label")
        expected = [rid for rid, row in table.scan() if row[1] == "even"]
        assert index.lookup("even") == expected

    def test_nulls_not_indexed(self) -> None:
        table = _table()
        table.insert([1, "a", None])
        index = HashIndex(table, "bucket")
        assert index.lookup(None) == []
        assert index.distinct_values() == 0

    def test_index_maintained_on_insert(self) -> None:
        table = _table()
        table.insert([1, "a", 7])
        index = HashIndex(table, "bucket")
        table.insert([2, "b", 7])
        assert index.lookup(7) == [0, 1]
        assert index.fan_out(7) == 2

    def test_average_fan_out(self) -> None:
        table = _table()
        table.insert([1, "a", 1])
        table.insert([2, "b", 1])
        table.insert([3, "c", 2])
        index = HashIndex(table, "bucket")
        assert index.average_fan_out() == pytest.approx(1.5)

    def test_average_fan_out_empty(self) -> None:
        index = HashIndex(_table(), "bucket")
        assert index.average_fan_out() == 0.0

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=100))
    def test_property_lookup_equals_filter(self, buckets: list[int]) -> None:
        table = _table()
        for i, bucket in enumerate(buckets):
            table.insert([i, "r", bucket])
        index = HashIndex(table, "bucket")
        for value in set(buckets):
            expected = [rid for rid, row in table.scan() if row[2] == value]
            assert index.lookup(value) == expected
