"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.dblp import DBLPConfig, generate_dblp, small_dblp
from repro.datasets.tpch import TPCHConfig, generate_tpch, small_tpch
from repro.errors import DatasetError


class TestDBLPGenerator:
    def test_deterministic_under_seed(self) -> None:
        a = small_dblp(seed=3)
        b = small_dblp(seed=3)
        assert a.db.total_rows == b.db.total_rows
        for table in a.db.table_names:
            ta, tb = a.db.table(table), b.db.table(table)
            assert [r for _i, r in ta.scan()] == [r for _i, r in tb.scan()]

    def test_different_seeds_differ(self) -> None:
        a = small_dblp(seed=3)
        b = small_dblp(seed=4)
        papers_a = [r for _i, r in a.db.table("cites").scan()]
        papers_b = [r for _i, r in b.db.table("cites").scan()]
        assert papers_a != papers_b

    def test_referential_integrity(self, dblp) -> None:
        dblp.db.validate_integrity()

    def test_family_present_with_expected_ids(self, dblp) -> None:
        author = dblp.db.table("author")
        names = [author.value(author.row_id_for_pk(pk), "name") for pk in (0, 1, 2)]
        assert names == [
            "Christos Faloutsos",
            "Michalis Faloutsos",
            "Petros Faloutsos",
        ]
        assert dblp.family_author_ids == [0, 1, 2]

    def test_joint_paper_exists(self, dblp) -> None:
        writes = dblp.db.table("writes")
        authors_of_paper0 = {
            row[writes.schema.column_index("author_id")]
            for _rid, row in writes.scan()
            if row[writes.schema.column_index("paper_id")] == 0
        }
        assert {0, 1, 2} <= authors_of_paper0

    def test_every_paper_has_an_author(self, dblp) -> None:
        writes = dblp.db.table("writes")
        papers_with_authors = {
            row[writes.schema.column_index("paper_id")] for _rid, row in writes.scan()
        }
        assert papers_with_authors == set(range(dblp.config.n_papers))

    def test_citation_skew_is_power_law_like(self) -> None:
        data = generate_dblp(DBLPConfig(n_authors=100, n_papers=300, seed=5))
        cites = data.db.table("cites")
        col = cites.schema.column_index("cited_id")
        counts = np.zeros(300)
        for _rid, row in cites.scan():
            counts[row[col]] += 1
        top_decile = np.sort(counts)[-30:].sum()
        assert top_decile / max(1, counts.sum()) > 0.3  # heavy head

    def test_no_self_citations_or_duplicates(self, dblp) -> None:
        cites = dblp.db.table("cites")
        citing_idx = cites.schema.column_index("citing_id")
        cited_idx = cites.schema.column_index("cited_id")
        seen = set()
        for _rid, row in cites.scan():
            edge = (row[citing_idx], row[cited_idx])
            assert edge[0] != edge[1]
            assert edge not in seen
            seen.add(edge)

    def test_validation_errors(self) -> None:
        with pytest.raises(DatasetError):
            generate_dblp(DBLPConfig(n_authors=2, include_faloutsos_family=True))
        with pytest.raises(DatasetError):
            generate_dblp(DBLPConfig(year_range=(2011, 1980)))

    def test_author_lookup_by_name(self, dblp) -> None:
        assert dblp.author_id_by_name("Christos Faloutsos") == 0
        with pytest.raises(DatasetError):
            dblp.author_id_by_name("Nobody")


class TestTPCHGenerator:
    def test_deterministic_under_seed(self) -> None:
        a = small_tpch(seed=9)
        b = small_tpch(seed=9)
        for table in a.db.table_names:
            ta, tb = a.db.table(table), b.db.table(table)
            assert [r for _i, r in ta.scan()] == [r for _i, r in tb.scan()]

    def test_referential_integrity(self, tpch) -> None:
        tpch.db.validate_integrity()

    def test_reference_data_sizes(self, tpch) -> None:
        assert len(tpch.db.table("region")) == 5
        assert len(tpch.db.table("nation")) == 25

    def test_scale_factor_ratios(self) -> None:
        data = generate_tpch(TPCHConfig(scale_factor=0.002, seed=1))
        db = data.db
        assert len(db.table("orders")) == 3000
        assert len(db.table("lineitem")) == 12000
        assert len(db.table("customer")) == 300
        # TPC-H ratios: 10 orders/customer, 4 lineitems/order.
        assert len(db.table("orders")) / len(db.table("customer")) == pytest.approx(10.0)
        assert len(db.table("lineitem")) / len(db.table("orders")) == pytest.approx(4.0)

    def test_totalprice_derived_from_lineitems(self, tpch) -> None:
        db = tpch.db
        orders = db.table("orders")
        lineitem = db.table("lineitem")
        li_order = lineitem.schema.column_index("order_id")
        li_price = lineitem.schema.column_index("extendedprice")
        li_disc = lineitem.schema.column_index("discount")
        totals: dict[int, float] = {}
        for _rid, row in lineitem.scan():
            totals[row[li_order]] = totals.get(row[li_order], 0.0) + row[li_price] * (
                1.0 - row[li_disc]
            )
        checked = 0
        for rid, row in orders.scan():
            pk = orders.pk_of_row(rid)
            if pk in totals:
                assert orders.value(rid, "totalprice") == pytest.approx(
                    totals[pk], rel=1e-2
                )
                checked += 1
        assert checked > 0

    def test_partsupp_pairs_unique(self, tpch) -> None:
        ps = tpch.db.table("partsupp")
        part_idx = ps.schema.column_index("part_id")
        supp_idx = ps.schema.column_index("supp_id")
        pairs = [(row[part_idx], row[supp_idx]) for _rid, row in ps.scan()]
        assert len(pairs) == len(set(pairs))

    def test_bad_scale_factor_rejected(self) -> None:
        with pytest.raises(DatasetError):
            generate_tpch(TPCHConfig(scale_factor=0.0))
