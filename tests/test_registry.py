"""Tests for the open algorithm/backend registries (plugin extension point)."""

from __future__ import annotations

import pytest

from repro.core.generation import DataGraphBackend
from repro.core.options import QueryOptions, Source
from repro.core.os_tree import ObjectSummary, SizeLResult
from repro.core.registry import (
    ALGORITHM_REGISTRY,
    BACKEND_REGISTRY,
    Registry,
    algorithm_names,
    backend_names,
    get_algorithm,
    register_algorithm,
    register_backend,
)
from repro.errors import RegistryError, SummaryError


def first_l_size_l(tree: ObjectSummary, l: int) -> SizeLResult:  # noqa: E741
    """A deliberately naive plugin: keep the first l nodes in BFS order."""
    uids = {node.uid for node in tree.nodes[: l]}
    subset = tree.materialise_subset(uids)
    return SizeLResult(
        summary=subset,
        selected_uids=uids,
        importance=subset.total_importance(),
        algorithm="first_l",
        l=l,
        stats={},
    )


@pytest.fixture
def first_l_plugin():
    register_algorithm("first_l", first_l_size_l)
    yield "first_l"
    ALGORITHM_REGISTRY.unregister("first_l")


class TestRegistry:
    def test_builtin_algorithms_registered(self) -> None:
        assert {"dp", "bottom_up", "top_path", "top_path_optimized"} <= set(
            algorithm_names()
        )

    def test_builtin_backends_registered(self) -> None:
        assert {"datagraph", "database"} <= set(backend_names())

    def test_register_get_roundtrip(self) -> None:
        registry: Registry[int] = Registry("widget")
        registry.register("one", 1)
        assert registry.get("one") == 1
        assert "one" in registry
        assert registry.names() == ["one"]

    def test_duplicate_name_rejected(self) -> None:
        registry: Registry[int] = Registry("widget")
        registry.register("one", 1)
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("one", 2)
        assert registry.get("one") == 1  # original untouched

    def test_replace_overrides(self) -> None:
        registry: Registry[int] = Registry("widget")
        registry.register("one", 1)
        registry.register("one", 2, replace=True)
        assert registry.get("one") == 2

    def test_bad_name_rejected(self) -> None:
        registry: Registry[int] = Registry("widget")
        with pytest.raises(RegistryError, match="non-empty string"):
            registry.register("", 1)
        with pytest.raises(RegistryError, match="non-empty string"):
            registry.register(None, 1)  # type: ignore[arg-type]

    def test_unknown_lookup_lists_choices(self) -> None:
        with pytest.raises(SummaryError, match="unknown algorithm 'magic'"):
            get_algorithm("magic")

    def test_duplicate_builtin_algorithm_rejected(self) -> None:
        with pytest.raises(RegistryError):
            register_algorithm("dp", first_l_size_l)

    def test_decorator_form(self) -> None:
        @register_algorithm("decorated_tmp")
        def decorated(tree, l):  # noqa: E741
            return first_l_size_l(tree, l)

        try:
            assert get_algorithm("decorated_tmp") is decorated
        finally:
            ALGORITHM_REGISTRY.unregister("decorated_tmp")

    def test_unregister_unknown(self) -> None:
        with pytest.raises(SummaryError, match="unknown algorithm"):
            ALGORITHM_REGISTRY.unregister("never_registered")


class TestAlgorithmPluginEndToEnd:
    """A third-party algorithm is selectable without touching repro source."""

    def test_engine_size_l(self, dblp_engine, first_l_plugin) -> None:
        result = dblp_engine.size_l(
            "author",
            0,
            options=QueryOptions(l=5, algorithm="first_l", source=Source.COMPLETE),
        )
        assert result.size == 5
        assert result.algorithm == "first_l"

    def test_session_keyword_query(self, dblp_engine, first_l_plugin) -> None:
        from repro.session import Session

        session = Session(dblp_engine)
        results = session.keyword_query(
            "Faloutsos", options=QueryOptions(l=4, algorithm="first_l")
        )
        assert len(results) == 3
        assert all(r.result.algorithm == "first_l" for r in results)

    def test_cli_parser_choices_derive_from_registry(self, first_l_plugin) -> None:
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["query", "--keywords", "x", "--algorithm", "first_l"]
        )
        assert args.algorithm == "first_l"

    def test_cli_query_runs_plugin(self, first_l_plugin, capsys) -> None:
        from repro.cli import main

        code = main(
            [
                "--scale", "0.2",
                "query",
                "--keywords", "Faloutsos",
                "--l", "4",
                "--algorithm", "first_l",
            ]
        )
        assert code == 0
        assert "result 1" in capsys.readouterr().out


class TestBackendPluginEndToEnd:
    def test_custom_backend_selected_by_name(self, dblp_engine) -> None:
        created = []

        @register_backend("recording_datagraph")
        def recording(engine):
            backend = DataGraphBackend(engine.db, engine.data_graph)
            created.append(backend)
            return backend

        try:
            result = dblp_engine.size_l(
                "author",
                0,
                options=QueryOptions(
                    l=5, source=Source.COMPLETE, backend="recording_datagraph"
                ),
            )
            assert created, "factory was never invoked"
            assert result.stats["backend"] == "recording_datagraph"
            assert result.size == 5
        finally:
            BACKEND_REGISTRY.unregister("recording_datagraph")

    def test_unknown_backend_message(self, dblp_engine) -> None:
        with pytest.raises(SummaryError, match="unknown backend"):
            dblp_engine.size_l(
                "author", 0, options=QueryOptions(l=5, backend="ramdisk")
            )
