"""Tests for the importance store and G_DS annotation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RankingError
from repro.ranking.store import ImportanceStore, annotate_gds


class TestImportanceStore:
    def test_importance_lookup(self, dblp_store) -> None:
        assert dblp_store.importance("author", 0) > 0

    def test_unknown_table_raises(self, dblp_store) -> None:
        with pytest.raises(RankingError):
            dblp_store.importance("nope", 0)
        with pytest.raises(RankingError):
            dblp_store.array("nope")

    def test_max_importance(self, dblp_store) -> None:
        assert dblp_store.max_importance("paper") == dblp_store.array("paper").max()

    def test_local_importance_is_equation_3(self, dblp, dblp_store) -> None:
        gds = dblp.author_gds()
        paper_node = gds.node("Paper")
        expected = dblp_store.importance("paper", 3) * paper_node.affinity
        assert dblp_store.local_importance(paper_node, 3) == pytest.approx(expected)

    def test_scaled(self, dblp_store) -> None:
        doubled = dblp_store.scaled(2.0)
        assert doubled.importance("author", 0) == pytest.approx(
            2.0 * dblp_store.importance("author", 0)
        )

    def test_normalised_to_mean(self, dblp_store) -> None:
        normed = dblp_store.normalised_to_mean(5.0)
        total = sum(float(normed.array(t).sum()) for t in normed.tables())
        count = sum(int(normed.array(t).size) for t in normed.tables())
        assert total / count == pytest.approx(5.0)

    def test_uniform_store(self, dblp) -> None:
        store = ImportanceStore.uniform(dblp.db, 3.0)
        assert store.importance("author", 5) == 3.0

    def test_empty_table_max(self) -> None:
        store = ImportanceStore({"empty": np.array([])})
        assert store.max_importance("empty") == 0.0


class TestAnnotateGds:
    def test_max_local_is_table_max_times_affinity(self, dblp, dblp_store) -> None:
        gds = dblp.author_gds().prune(0.7)
        annotate_gds(gds, dblp_store)
        paper = gds.node("Paper")
        assert paper.max_local == pytest.approx(
            dblp_store.max_importance("paper") * paper.affinity
        )

    def test_mmax_is_descendant_upper_bound(self, dblp, dblp_store) -> None:
        """mmax(R_i) must dominate max(R_j) of every descendant — the safety
        requirement of Avoidance Condition 1 (and where we deviate from the
        likely-typo annotation in the paper's Figure 2; see DESIGN.md)."""
        gds = dblp.author_gds().prune(0.7)
        annotate_gds(gds, dblp_store)

        def descendants(node):
            for child in node.children:
                yield child
                yield from descendants(child)

        for node in gds.nodes():
            for descendant in descendants(node):
                assert node.mmax_local >= descendant.max_local - 1e-12

    def test_leaf_mmax_is_zero(self, dblp, dblp_store) -> None:
        gds = dblp.author_gds().prune(0.7)
        annotate_gds(gds, dblp_store)
        assert gds.node("Conference").mmax_local == 0.0
        assert gds.node("Co_Author").mmax_local == 0.0
