"""Edge-case and failure-injection tests across subsystems.

Covers the corners the main suites do not: NULL foreign keys flowing
through every join type, self-referential (hierarchy) schemas, θ extremes,
and renderer behaviour on degenerate inputs.
"""

from __future__ import annotations

import pytest

from repro.core.engine import SizeLEngine
from repro.core.generation import DatabaseBackend, DataGraphBackend, generate_os
from repro.datagraph.builder import build_data_graph
from repro.db import Column, ColumnType, Database, ForeignKey, QueryInterface, TableSchema
from repro.ranking.store import ImportanceStore
from repro.schema_graph.affinity import ComputedAffinityModel, ManualAffinityModel
from repro.schema_graph.gds import build_gds
from repro.schema_graph.graph import SchemaGraph

INT, TEXT = ColumnType.INT, ColumnType.TEXT


@pytest.fixture()
def orphan_db() -> Database:
    """Items optionally belonging to a box (nullable FK)."""
    db = Database("orphans")
    db.create_table(
        TableSchema(
            "box",
            [Column("box_id", INT), Column("label", TEXT, text_searchable=True)],
            primary_key="box_id",
        )
    )
    db.create_table(
        TableSchema(
            "item",
            [
                Column("item_id", INT),
                Column("name", TEXT, text_searchable=True),
                Column("box_id", INT, nullable=True),
            ],
            primary_key="item_id",
            foreign_keys=[ForeignKey("box_id", "box", "box_id")],
        )
    )
    db.insert("box", [0, "crate"])
    db.insert("item", [0, "hammer", 0])
    db.insert("item", [1, "feather", None])  # orphan: NULL FK
    db.validate_integrity()
    db.ensure_fk_indexes()
    return db


class TestNullForeignKeys:
    def _item_gds(self, db: Database):
        graph = SchemaGraph(db)
        model = ManualAffinityModel({"item": 1.0, "box": 0.9})
        return build_gds(graph, "item", model, max_depth=2)

    def test_datagraph_backend_skips_null_ref(self, orphan_db) -> None:
        gds = self._item_gds(orphan_db)
        store = ImportanceStore.uniform(orphan_db)
        backend = DataGraphBackend(orphan_db, build_data_graph(orphan_db))
        orphan_os = generate_os(1, gds, backend, store)
        assert orphan_os.size == 1  # feather has no box: root only
        boxed_os = generate_os(0, gds, backend, store)
        assert boxed_os.size == 2

    def test_database_backend_skips_null_ref_but_counts_io(self, orphan_db) -> None:
        gds = self._item_gds(orphan_db)
        store = ImportanceStore.uniform(orphan_db)
        qi = QueryInterface(orphan_db)
        backend = DatabaseBackend(qi)
        orphan_os = generate_os(1, gds, backend, store)
        assert orphan_os.size == 1
        assert qi.io_accesses >= 1  # the lookup still executed

    def test_both_backends_agree(self, orphan_db) -> None:
        gds = self._item_gds(orphan_db)
        store = ImportanceStore.uniform(orphan_db)
        for row_id in (0, 1):
            via_graph = generate_os(
                row_id, gds, DataGraphBackend(orphan_db, build_data_graph(orphan_db)), store
            )
            via_db = generate_os(
                row_id, gds, DatabaseBackend(QueryInterface(orphan_db)), store
            )
            assert via_graph.size == via_db.size


@pytest.fixture()
def hierarchy_db() -> Database:
    """A self-referential employee→manager hierarchy."""
    db = Database("org")
    db.create_table(
        TableSchema(
            "employee",
            [
                Column("emp_id", INT),
                Column("name", TEXT, text_searchable=True),
                Column("manager_id", INT, nullable=True),
            ],
            primary_key="emp_id",
            foreign_keys=[ForeignKey("manager_id", "employee", "emp_id")],
        )
    )
    db.insert("employee", [0, "ceo", None])
    db.insert("employee", [1, "vp-a", 0])
    db.insert("employee", [2, "vp-b", 0])
    db.insert("employee", [3, "eng", 1])
    db.validate_integrity()
    db.ensure_fk_indexes()
    return db


class TestSelfReferentialSchema:
    def test_treealization_replicates_roles(self, hierarchy_db) -> None:
        """A self-loop FK must yield two replicated roles: the manager
        (N:1) and the reports (1:N), like Paper's cites/cited-by."""
        graph = SchemaGraph(hierarchy_db)
        model = ComputedAffinityModel(graph)
        gds = build_gds(graph, "employee", model, max_depth=2)
        depth1_tables = [(c.label, c.table) for c in gds.root.children]
        assert len(depth1_tables) == 2
        assert all(table == "employee" for _label, table in depth1_tables)

    def test_os_walks_up_and_down(self, hierarchy_db) -> None:
        graph = SchemaGraph(hierarchy_db)
        model = ComputedAffinityModel(graph)
        gds = build_gds(graph, "employee", model, max_depth=2)
        store = ImportanceStore.uniform(hierarchy_db)
        backend = DataGraphBackend(hierarchy_db, build_data_graph(hierarchy_db))
        os_tree = generate_os(1, gds, backend, store)  # vp-a
        rows = {(n.depth, n.row_id) for n in os_tree.nodes}
        assert (0, 1) in rows  # self
        assert (1, 0) in rows  # manager (ceo)
        assert (1, 3) in rows  # report (eng)


class TestThetaExtremes:
    def test_theta_one_keeps_root_only(self, dblp, dblp_store) -> None:
        engine = SizeLEngine(
            dblp.db, {"author": dblp.author_gds()}, dblp_store, theta=1.01
        )
        tree = engine.complete_os("author", 0)
        assert tree.size == 1

    def test_theta_zero_keeps_everything(self, dblp, dblp_store) -> None:
        loose = SizeLEngine(
            dblp.db, {"author": dblp.author_gds()}, dblp_store, theta=0.0
        )
        strict = SizeLEngine(
            dblp.db, {"author": dblp.author_gds()}, dblp_store, theta=0.7
        )
        assert (
            loose.complete_os("author", 2).size
            >= strict.complete_os("author", 2).size
        )


class TestRenderingDegenerates:
    def test_single_node_render(self, dblp_engine) -> None:
        tree = dblp_engine.complete_os("author", 0, depth_limit=0)
        assert tree.size == 1
        assert tree.render().startswith("Author: ")

    def test_render_null_attribute_skipped(self, orphan_db) -> None:
        graph = SchemaGraph(orphan_db)
        model = ManualAffinityModel({"item": 1.0, "box": 0.9})
        gds = build_gds(graph, "item", model, max_depth=1)
        store = ImportanceStore.uniform(orphan_db)
        backend = DataGraphBackend(orphan_db, build_data_graph(orphan_db))
        tree = generate_os(1, gds, backend, store)
        assert "None" not in tree.render()
