"""Tests for OS generation (Algorithm 5) and backend equivalence."""

from __future__ import annotations

import pytest

from repro.core.generation import DatabaseBackend, DataGraphBackend, generate_os
from repro.db.query import QueryInterface
from repro.errors import SummaryError


def _tree_signature(tree) -> list[tuple[str, int, int]]:
    """Structure signature independent of uid assignment order."""
    return sorted(
        (node.gds.label, node.row_id, node.parent.row_id if node.parent else -1)
        for node in tree.nodes
    )


class TestGeneration:
    def test_root_is_tds(self, dblp_engine) -> None:
        tree = dblp_engine.complete_os("author", 0)
        assert tree.root.table == "author"
        assert tree.root.row_id == 0
        assert tree.root.depth == 0

    def test_children_follow_gds(self, dblp_engine) -> None:
        tree = dblp_engine.complete_os("author", 0)
        for node in tree.nodes:
            for child in node.children:
                assert child.gds.parent is node.gds

    def test_weights_are_local_importance(self, dblp_engine, dblp_store) -> None:
        tree = dblp_engine.complete_os("author", 0)
        for node in tree.nodes[:50]:
            expected = dblp_store.importance(node.table, node.row_id) * node.gds.affinity
            assert node.weight == pytest.approx(expected)

    def test_backends_produce_identical_trees(self, dblp_engine) -> None:
        via_graph = dblp_engine.complete_os("author", 1, backend="datagraph")
        via_db = dblp_engine.complete_os("author", 1, backend="database")
        assert _tree_signature(via_graph) == _tree_signature(via_db)

    def test_backends_agree_on_tpch(self, tpch_engine) -> None:
        via_graph = tpch_engine.complete_os("customer", 3, backend="datagraph")
        via_db = tpch_engine.complete_os("customer", 3, backend="database")
        assert _tree_signature(via_graph) == _tree_signature(via_db)

    def test_database_backend_counts_io(self, dblp_engine) -> None:
        dblp_engine.query_interface.reset_counters()
        dblp_engine.complete_os("author", 0, backend="database")
        assert dblp_engine.query_interface.io_accesses > 0

    def test_depth_limit(self, dblp_engine) -> None:
        tree = dblp_engine.complete_os("author", 0, depth_limit=1)
        assert tree.max_depth() <= 1
        full = dblp_engine.complete_os("author", 0)
        assert tree.size < full.size

    def test_max_nodes_guard(self, dblp_engine, dblp_store) -> None:
        gds = dblp_engine.gds_for("author")
        backend = dblp_engine.backend("datagraph")
        with pytest.raises(SummaryError, match="max_nodes"):
            generate_os(0, gds, backend, dblp_store, max_nodes=5)

    def test_coauthor_excludes_the_data_subject(self, dblp_engine) -> None:
        """Example 4/5: Christos never appears as his own co-author."""
        tree = dblp_engine.complete_os("author", 0)
        for node in tree.nodes:
            if node.gds.label == "Co_Author":
                assert node.row_id != tree.root.row_id

    def test_coauthors_of_joint_paper_present(self, dblp_engine, dblp) -> None:
        """Paper 0 is co-authored by the whole family: Christos's OS must
        show Michalis and Petros as co-authors under it."""
        tree = dblp_engine.complete_os("author", 0)
        author_table = dblp.db.table("author")
        coauthor_pks = {
            author_table.pk_of_row(node.row_id)
            for node in tree.nodes
            if node.gds.label == "Co_Author" and node.parent.row_id == 0
        }
        assert {1, 2} <= coauthor_pks  # Michalis, Petros

    def test_multiple_occurrences_of_same_tuple_allowed(self, dblp_engine) -> None:
        tree = dblp_engine.complete_os("author", 0)
        seen: dict[tuple[str, int], int] = {}
        for node in tree.nodes:
            key = (node.table, node.row_id)
            seen[key] = seen.get(key, 0) + 1
        assert max(seen.values()) > 1  # prolific co-authors repeat

    def test_prelim_kind_flag(self, dblp_engine) -> None:
        complete = dblp_engine.complete_os("author", 0)
        prelim, _stats = dblp_engine.prelim_os("author", 0, 10)
        assert complete.kind == "complete"
        assert prelim.kind == "prelim"


class TestBackendUnits:
    def test_datagraph_backend_counts_visits(self, dblp_engine) -> None:
        backend = dblp_engine.backend("datagraph")
        assert isinstance(backend, DataGraphBackend)
        dblp_engine.complete_os("author", 0)
        # Fresh backend per call; instrument directly:
        gds = dblp_engine.gds_for("author")
        from repro.core.generation import generate_os as gen

        gen(0, gds, backend, dblp_engine.store)
        assert backend.nodes_visited > 0

    def test_unknown_backend_kind(self, dblp_engine) -> None:
        with pytest.raises(SummaryError):
            dblp_engine.backend("oracle")

    def test_children_top_threshold_and_limit(self, dblp_engine, dblp_store) -> None:
        gds = dblp_engine.gds_for("author")
        paper_node = gds.node("Paper")
        for kind in ("datagraph", "database"):
            backend = dblp_engine.backend(kind)
            tree = dblp_engine.complete_os("author", 0)
            root = tree.root
            everything = backend.children(paper_node, root)
            capped = backend.children_top(paper_node, root, dblp_store, 0.0, 3)
            assert len(capped) == min(3, len(everything))
            scores = [dblp_store.local_importance(paper_node, r) for r in capped]
            assert scores == sorted(scores, reverse=True)
            all_scores = sorted(
                (dblp_store.local_importance(paper_node, r) for r in everything),
                reverse=True,
            )
            assert scores == all_scores[: len(scores)]

    def test_database_backend_top_counts_one_io(self, dblp_engine, dblp_store) -> None:
        qi = QueryInterface(dblp_engine.db)
        backend = DatabaseBackend(qi)
        gds = dblp_engine.gds_for("author")
        tree = dblp_engine.complete_os("author", 0)
        qi.reset_counters()
        backend.children_top(gds.node("Paper"), tree.root, dblp_store, 1e12, 5)
        assert qi.io_accesses == 1  # empty result still costs one access
