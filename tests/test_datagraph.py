"""Tests for the tuple-level data graph index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagraph.builder import build_data_graph, timed_build
from repro.errors import GraphError
from repro.schema_graph.gds import JunctionJoin, RefJoin, ReverseJoin


class TestBuild:
    def test_edge_count_matches_fk_rows(self, dblp) -> None:
        graph = build_data_graph(dblp.db)
        writes_edges = graph.adjacency("writes", "author_id").edge_count
        assert writes_edges == len(dblp.db.table("writes"))

    def test_timed_build(self, dblp) -> None:
        graph, seconds = timed_build(dblp.db)
        assert seconds >= 0
        assert graph.edge_count > 0

    def test_size_bytes_exact(self, dblp) -> None:
        graph = build_data_graph(dblp.db)
        expected = sum(
            adj.forward.nbytes + adj.backward_indptr.nbytes + adj.backward_indices.nbytes
            for adj in graph._adj.values()
        )
        assert graph.size_bytes() == expected > 0
        assert graph.approx_size_bytes() == expected  # compat alias, now exact

    def test_csr_buckets_match_forward(self, dblp) -> None:
        graph = build_data_graph(dblp.db)
        adj = graph.adjacency("writes", "paper_id")
        for target_row in range(len(dblp.db.table("paper"))):
            bucket = adj.backward(target_row)
            assert list(bucket) == sorted(bucket)  # ascending owner rows
            assert all(adj.forward[owner] == target_row for owner in bucket)
        assert adj.backward_indices.size == int((adj.forward >= 0).sum())

    def test_backward_many_matches_per_row(self, dblp) -> None:
        graph = build_data_graph(dblp.db)
        adj = graph.adjacency("writes", "author_id")
        targets = np.arange(len(dblp.db.table("author")))
        rep, owners = adj.backward_many(targets)
        flat = [
            (int(t_pos), int(owner))
            for t_pos, t in enumerate(targets)
            for owner in adj.backward(int(t))
        ]
        assert list(zip(rep.tolist(), owners.tolist())) == flat

    def test_unknown_adjacency_raises(self, dblp) -> None:
        graph = build_data_graph(dblp.db)
        with pytest.raises(GraphError):
            graph.adjacency("author", "name")


class TestChildrenOf:
    @pytest.fixture()
    def graph(self, dblp):
        return build_data_graph(dblp.db)

    def test_ref_join(self, dblp, graph) -> None:
        paper = dblp.db.table("paper")
        year_table = dblp.db.table("year")
        join = RefJoin(fk_column="year_id", target_table="year")
        for row_id in range(5):
            children = graph.children_of(join, "paper", row_id)
            expected_pk = paper.value(row_id, "year_id")
            assert list(children) == [year_table.row_id_for_pk(expected_pk)]

    def test_reverse_join(self, dblp, graph) -> None:
        join = ReverseJoin(child_table="writes", fk_column="paper_id")
        writes = dblp.db.table("writes")
        paper = dblp.db.table("paper")
        paper_pk = paper.pk_of_row(0)
        expected = [
            rid for rid, row in writes.scan()
            if row[writes.schema.column_index("paper_id")] == paper_pk
        ]
        assert list(graph.children_of(join, "paper", 0)) == expected

    def test_reverse_join_is_zero_copy(self, dblp, graph) -> None:
        join = ReverseJoin(child_table="writes", fk_column="paper_id")
        children = graph.children_of(join, "paper", 0)
        adj = graph.adjacency("writes", "paper_id")
        assert children.base is adj.backward_indices  # a view, not a copy

    def test_junction_join(self, dblp, graph) -> None:
        join = JunctionJoin(
            junction_table="writes",
            from_column="author_id",
            to_column="paper_id",
            target_table="paper",
        )
        children = graph.children_of(join, "author", 0)
        # Compare against a manual two-hop join.
        writes = dblp.db.table("writes")
        paper = dblp.db.table("paper")
        author_pk = dblp.db.table("author").pk_of_row(0)
        expected = [
            paper.row_id_for_pk(row[writes.schema.column_index("paper_id")])
            for _rid, row in writes.scan()
            if row[writes.schema.column_index("author_id")] == author_pk
        ]
        assert list(children) == expected

    def test_junction_join_excludes_origin(self, dblp, graph) -> None:
        join = JunctionJoin(
            junction_table="writes",
            from_column="paper_id",
            to_column="author_id",
            target_table="author",
            exclude_origin=True,
        )
        # Paper 0 is the family joint paper: authors include 0, 1, 2.
        with_origin = graph.children_of(join, "paper", 0, origin_row=None)
        without = graph.children_of(join, "paper", 0, origin_row=0)
        assert 0 in with_origin
        assert 0 not in without
        assert set(without) == set(with_origin) - {0}

    def test_self_loop_junction_directions_differ(self, dblp, graph) -> None:
        cites = JunctionJoin("cites", "citing_id", "cited_id", "paper")
        cited_by = JunctionJoin("cites", "cited_id", "citing_id", "paper")
        outgoing = graph.children_of(cites, "paper", 0)
        incoming = graph.children_of(cited_by, "paper", 0)
        # A paper's citations and its citers are different lists in general.
        cites_table = dblp.db.table("cites")
        paper = dblp.db.table("paper")
        pk = paper.pk_of_row(0)
        expected_out = [
            paper.row_id_for_pk(row[cites_table.schema.column_index("cited_id")])
            for _rid, row in cites_table.scan()
            if row[cites_table.schema.column_index("citing_id")] == pk
        ]
        assert list(outgoing) == expected_out
        assert set(outgoing) != set(incoming) or not outgoing
