"""End-to-end tests for the HTTP front end.

One ``ThreadingHTTPServer`` hosts **two** datasets (DBLP snapshot-backed,
TPC-H live) for the whole module; every test is a real socket round-trip
through :mod:`urllib`.  The acceptance path: page a keyword query via
cursors across multiple requests and match it node-for-node against the
in-process ``Session.keyword_query``, hot-reload the snapshot through
``/v1/admin/reload``, and pin that a mismatched snapshot produces the
409 error body while the deployment keeps serving.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.options import QueryOptions
from repro.service import Deployment, create_server
from repro.service.protocol import PROTOCOL_VERSION
from repro.session import Session

L = 6
OPTIONS = QueryOptions(l=L)


@pytest.fixture(scope="module")
def served(dblp, tpch, dblp_snapshot):
    """(server, deployment) over dblp (snapshot-backed) + tpch."""
    deployment = (
        Deployment()
        .add("dblp", dataset=dblp, snapshot=dblp_snapshot.path)
        .add("tpch", dataset=tpch)
    )
    server = create_server(deployment)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, deployment
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    deployment.close()


def call(server, path: str, body: dict | None = None, method: str | None = None):
    """One HTTP round-trip; returns (status, decoded JSON body)."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        server.url + path,
        data=data,
        method=method or ("POST" if data is not None else "GET"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


class TestQueryPaging:
    def test_cursor_paging_matches_session_node_for_node(self, served, dblp) -> None:
        server, _deployment = served
        pages = []
        cursor = None
        requests = 0
        while True:
            body = {
                "dataset": "dblp",
                "keywords": ["Faloutsos"],
                "options": {"l": L},
                "page_size": 1,
            }
            if cursor is not None:
                body["cursor"] = cursor
            status, payload = call(server, "/v1/query", body)
            assert status == 200
            assert payload["protocol_version"] == PROTOCOL_VERSION
            pages.extend(payload["results"])
            requests += 1
            cursor = payload["next_cursor"]
            if cursor is None:
                break
        assert requests >= 2  # the acceptance bar: paged across requests

        # node-for-node identical to the in-process Session
        expected = Session.from_dataset(dblp).keyword_query(
            "Faloutsos", options=OPTIONS
        )
        assert len(pages) == len(expected)
        assert payload["total_matches"] == len(expected)
        for rank, (entry, wire) in enumerate(zip(expected, pages)):
            assert wire["rank"] == rank
            assert wire["table"] == entry.match.table
            assert wire["row_id"] == entry.match.row_id
            assert wire["selected_uids"] == sorted(entry.result.selected_uids)
            assert wire["rendered"] == entry.result.render()
            assert wire["importance"] == pytest.approx(entry.result.importance)

    def test_single_request_equals_paged_union(self, served) -> None:
        server, _deployment = served
        _status, whole = call(
            server,
            "/v1/query",
            {"dataset": "dblp", "keywords": ["Faloutsos"], "options": {"l": L}},
        )
        assert [r["rank"] for r in whole["results"]] == list(
            range(whole["total_matches"])
        )
        assert whole["next_cursor"] is None

    def test_earlier_pages_not_recomputed(self, served) -> None:
        """Resuming from a cursor computes only the requested page."""
        server, deployment = served
        session = deployment.session("dblp")
        _status, first = call(
            server,
            "/v1/query",
            {
                "dataset": "dblp",
                "keywords": ["Faloutsos"],
                "options": {"l": L},
                "page_size": 1,
            },
        )
        before = session.cache_stats()
        _status, second = call(
            server,
            "/v1/query",
            {
                "dataset": "dblp",
                "keywords": ["Faloutsos"],
                "options": {"l": L},
                "cursor": first["next_cursor"],
                "page_size": 1,
            },
        )
        after = session.cache_stats()
        assert [r["rank"] for r in second["results"]] == [1]
        # exactly one new subject entered the pipeline for page two
        assert after.requests - before.requests == 1

    def test_stale_cursor_is_pinned_400(self, served) -> None:
        server, _deployment = served
        _status, first = call(
            server,
            "/v1/query",
            {
                "dataset": "dblp",
                "keywords": ["Faloutsos"],
                "options": {"l": L},
                "page_size": 1,
            },
        )
        status, body = call(
            server,
            "/v1/query",
            {
                "dataset": "dblp",
                "keywords": ["zzznothing"],  # different ranking under the cursor
                "options": {"l": L},
                "cursor": first["next_cursor"],
            },
        )
        assert status == 400
        assert body["error"]["type"] == "RequestValidationError"
        assert "stale cursor" in body["error"]["message"]

    def test_complete_source_query_served_from_snapshot(self, served) -> None:
        """A wire query over the complete source must reach the disk tier
        of the snapshot-backed dataset (regression: the normalized prelim
        defaults used to pin flat=False into the decoded options, which
        silently bypassed the columnar path and the snapshot)."""
        server, deployment = served
        deployment.session("dblp").invalidate()  # memory out of the way
        deployment.reload("dblp")  # re-enable the disk tier after the mask
        before = deployment.session("dblp").cache_stats()
        status, payload = call(
            server,
            "/v1/query",
            {
                "dataset": "dblp",
                "keywords": ["Faloutsos"],
                "options": {"l": L, "source": "complete"},
            },
        )
        assert status == 200
        assert payload["cache"]["disk_hits"] - before.disk_hits == len(
            payload["results"]
        )
        assert payload["cache"]["tree_generations"] == before.tree_generations

    def test_tpch_served_alongside(self, served, tpch) -> None:
        server, _deployment = served
        status, payload = call(
            server,
            "/v1/query",
            {"dataset": "tpch", "keywords": ["Supplier#000001"], "options": {"l": 5}},
        )
        assert status == 200
        expected = Session.from_dataset(tpch).keyword_query(
            "Supplier#000001", options=QueryOptions(l=5)
        )
        assert [r["row_id"] for r in payload["results"]] == [
            e.match.row_id for e in expected
        ]
        assert [r["selected_uids"] for r in payload["results"]] == [
            sorted(e.result.selected_uids) for e in expected
        ]


class TestOtherEndpoints:
    def test_size_l_and_batch(self, served, dblp) -> None:
        server, _deployment = served
        status, single = call(
            server,
            "/v1/size-l",
            {"dataset": "dblp", "table": "author", "row_id": 1, "options": {"l": 7}},
        )
        assert status == 200
        expected = Session.from_dataset(dblp).size_l("author", 1, 7)
        assert single["result"]["selected_uids"] == sorted(expected.selected_uids)

        status, batch = call(
            server,
            "/v1/batch",
            {
                "dataset": "dblp",
                "subjects": [["author", 1], ["author", 0]],
                "options": {"l": 7},
            },
        )
        assert status == 200
        assert [r["row_id"] for r in batch["results"]] == [1, 0]
        assert batch["results"][0]["selected_uids"] == sorted(expected.selected_uids)

    def test_datasets_lists_both(self, served) -> None:
        server, _deployment = served
        status, body = call(server, "/v1/datasets")
        assert status == 200
        assert sorted(body["datasets"]) == ["dblp", "tpch"]
        assert body["datasets"]["dblp"]["snapshot"] is not None

    def test_stats_exposes_typed_cache_counters(self, served) -> None:
        server, _deployment = served
        call(
            server,
            "/v1/size-l",
            {"dataset": "dblp", "table": "author", "row_id": 2, "options": {"l": 5}},
        )
        status, body = call(server, "/v1/stats?dataset=dblp")
        assert status == 200
        assert body["dataset"] == "dblp"
        # the CacheStats field names, verbatim
        for key in ("hits", "misses", "disk_hits", "tree_generations"):
            assert key in body["cache"]

    def test_invalidate_endpoint_is_scoped(self, served) -> None:
        server, deployment = served
        session = deployment.session("dblp")
        session.size_l("author", 3, 5)
        status, body = call(
            server,
            "/v1/admin/invalidate",
            {"dataset": "dblp", "table": "author", "row_id": 3},
        )
        assert status == 200
        assert body["invalidated"] == {"table": "author", "row_id": 3}
        assert ("author", 3) not in session.cache._book

        # row_id without table is the pinned 400 (not a silent full clear)
        status, body = call(
            server, "/v1/admin/invalidate", {"dataset": "dblp", "row_id": 3}
        )
        assert status == 400
        assert body["error"]["type"] == "RequestValidationError"


class TestAdminReload:
    def test_hot_reload_swaps_the_snapshot(self, served) -> None:
        server, deployment = served
        before = deployment.session("dblp").cache.snapshot
        status, body = call(server, "/v1/admin/reload", {"dataset": "dblp"})
        assert status == 200
        assert body["dataset"] == "dblp"
        assert body["subjects"] == len(before.subjects)
        assert deployment.session("dblp").cache.snapshot is not before

    def test_mismatched_reload_is_409_and_keeps_serving(self, served) -> None:
        server, deployment = served
        entry = deployment._entry("tpch")
        entry.snapshot_path = deployment._entry("dblp").snapshot_path
        try:
            status, body = call(server, "/v1/admin/reload", {"dataset": "tpch"})
        finally:
            entry.snapshot_path = None
        assert status == 409
        assert body["error"]["type"] == "SnapshotMismatchError"
        assert body["error"]["status"] == 409
        assert "does not match" in body["error"]["message"]

        # the deployment is still up: the same dataset keeps answering
        status, payload = call(
            server,
            "/v1/query",
            {"dataset": "tpch", "keywords": ["Supplier#000001"], "options": {"l": 5}},
        )
        assert status == 200
        assert payload["results"]


class TestErrorContract:
    def test_unknown_dataset_is_404(self, served) -> None:
        server, _deployment = served
        status, body = call(
            server, "/v1/query", {"dataset": "oracle", "keywords": ["x"]}
        )
        assert status == 404
        assert body["error"]["type"] == "UnknownDatasetError"

    def test_unknown_endpoint_is_404(self, served) -> None:
        server, _deployment = served
        status, body = call(server, "/v1/nope", {"x": 1})
        assert status == 404
        # same typed body as the in-process dispatcher — transports agree
        assert body["error"]["type"] == "UnknownEndpointError"
        assert "unknown endpoint" in body["error"]["message"]
        status, body = call(server, "/v1/nope")  # GET flavour too
        assert status == 404
        assert body["error"]["type"] == "UnknownEndpointError"

    def test_bad_content_length_is_400_not_a_hung_thread(self, served) -> None:
        import http.client

        server, _deployment = served
        for bad in ("-1", "abc"):
            connection = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=10
            )
            try:
                connection.putrequest("POST", "/v1/query")
                connection.putheader("Content-Length", bad)
                connection.endheaders()
                response = connection.getresponse()
                assert response.status == 400, bad
                body = json.loads(response.read().decode("utf-8"))
                assert "Content-Length" in body["error"]["message"]
            finally:
                connection.close()

    def test_validation_failure_is_400(self, served) -> None:
        server, _deployment = served
        status, body = call(
            server,
            "/v1/query",
            {"dataset": "dblp", "keywords": ["x"], "options": {"l": 0}},
        )
        assert status == 400
        assert body["error"]["type"] == "RequestValidationError"
        assert "summary size l" in body["error"]["message"]

    def test_malformed_json_is_400(self, served) -> None:
        server, _deployment = served
        request = urllib.request.Request(
            server.url + "/v1/query",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert "not valid JSON" in body["error"]["message"]

    def test_wrong_method_is_405(self, served) -> None:
        server, _deployment = served
        status, body = call(server, "/v1/query", method="GET")
        assert status == 405
        assert "use POST" in body["error"]["message"]
        assert body["error"]["status"] == 405
        status, body = call(server, "/v1/datasets", {"x": 1})
        assert status == 405
        assert "use GET" in body["error"]["message"]


class TestHealthz:
    """``GET /v1/healthz``: pinned 200 liveness, no session builds."""

    def test_healthz_is_200_and_names_the_datasets(self, served) -> None:
        server, _deployment = served
        status, body = call(server, "/v1/healthz")
        assert status == 200
        assert body["ok"] is True
        assert body["role"] == "single-process"
        assert body["datasets"] == ["dblp", "tpch"]

    def test_healthz_never_builds_a_session(self) -> None:
        """A liveness probe on a freshly registered (unbuilt) deployment
        must answer without paying dataset synthesis."""
        deployment = Deployment().add("cold", named="dblp", scale=0.2)
        server = create_server(deployment)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, body = call(server, "/v1/healthz")
            assert status == 200
            assert body["ok"] is True
            assert deployment.describe("cold")["built"] is False
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            deployment.close()

    def test_healthz_is_get_only(self, served) -> None:
        server, _deployment = served
        status, body = call(server, "/v1/healthz", {"x": 1})
        assert status == 405
        assert "use GET" in body["error"]["message"]
