"""Unit + property tests for the heap structures backing Algorithms 2 and 4."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.heaps import BoundedTopHeap, KeyedMinHeap


class TestKeyedMinHeap:
    def test_pop_order_is_ascending(self) -> None:
        heap: KeyedMinHeap[str] = KeyedMinHeap()
        heap.push("c", 3.0)
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        assert [heap.pop()[0] for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self) -> None:
        heap: KeyedMinHeap[str] = KeyedMinHeap()
        heap.push("first", 1.0)
        heap.push("second", 1.0)
        assert heap.pop()[0] == "first"
        assert heap.pop()[0] == "second"

    def test_duplicate_push_raises(self) -> None:
        heap: KeyedMinHeap[str] = KeyedMinHeap()
        heap.push("x", 1.0)
        with pytest.raises(ValueError):
            heap.push("x", 2.0)

    def test_discard_removes_lazily(self) -> None:
        heap: KeyedMinHeap[str] = KeyedMinHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        assert heap.discard("a")
        assert not heap.discard("a")
        assert heap.peek() == ("b", 2.0)
        assert len(heap) == 1

    def test_peek_does_not_remove(self) -> None:
        heap: KeyedMinHeap[str] = KeyedMinHeap()
        heap.push("a", 1.0)
        assert heap.peek() == ("a", 1.0)
        assert len(heap) == 1

    def test_empty_pop_and_peek_raise(self) -> None:
        heap: KeyedMinHeap[str] = KeyedMinHeap()
        with pytest.raises(IndexError):
            heap.pop()
        with pytest.raises(IndexError):
            heap.peek()

    def test_contains_and_items(self) -> None:
        heap: KeyedMinHeap[int] = KeyedMinHeap()
        heap.push(1, 1.0)
        heap.push(2, 2.0)
        assert 1 in heap
        assert set(heap.items()) == {1, 2}

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=1, max_size=60))
    def test_property_pop_sequence_is_sorted(self, scores: list[float]) -> None:
        heap: KeyedMinHeap[int] = KeyedMinHeap()
        for idx, score in enumerate(scores):
            heap.push(idx, score)
        popped = [heap.pop()[1] for _ in range(len(scores))]
        assert popped == sorted(scores)


class TestBoundedTopHeap:
    def test_threshold_is_zero_until_full(self) -> None:
        heap: BoundedTopHeap[str] = BoundedTopHeap(3)
        heap.offer("a", 9.0)
        heap.offer("b", 8.0)
        assert heap.threshold == 0.0  # Algorithm 4 lines 20-21
        heap.offer("c", 7.0)
        assert heap.threshold == 7.0  # line 23: smallest of top-l PQ

    def test_eviction_keeps_largest(self) -> None:
        heap: BoundedTopHeap[int] = BoundedTopHeap(2)
        heap.offer(1, 1.0)
        heap.offer(2, 2.0)
        assert heap.offer(3, 3.0)  # evicts 1
        assert not heap.offer(4, 0.5)  # below threshold
        assert [item for item, _ in heap.items()] == [3, 2]

    def test_equal_score_does_not_evict(self) -> None:
        heap: BoundedTopHeap[str] = BoundedTopHeap(1)
        heap.offer("first", 5.0)
        assert not heap.offer("second", 5.0)
        assert heap.items() == [("first", 5.0)]

    def test_capacity_validation(self) -> None:
        with pytest.raises(ValueError):
            BoundedTopHeap(0)

    def test_items_sorted_descending(self) -> None:
        heap: BoundedTopHeap[int] = BoundedTopHeap(4)
        for idx, score in enumerate([3.0, 1.0, 4.0, 2.0]):
            heap.offer(idx, score)
        assert [score for _item, score in heap.items()] == [4.0, 3.0, 2.0, 1.0]

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=80),
        st.integers(min_value=1, max_value=10),
    )
    def test_property_retains_k_largest(self, scores: list[float], k: int) -> None:
        heap: BoundedTopHeap[int] = BoundedTopHeap(k)
        for idx, score in enumerate(scores):
            heap.offer(idx, score)
        retained = sorted((score for _item, score in heap.items()), reverse=True)
        expected = sorted(scores, reverse=True)[:k]
        assert retained == expected

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=80),
        st.integers(min_value=1, max_value=10),
    )
    def test_property_threshold_is_kth_largest_or_zero(
        self, scores: list[float], k: int
    ) -> None:
        heap: BoundedTopHeap[int] = BoundedTopHeap(k)
        for idx, score in enumerate(scores):
            heap.offer(idx, score)
        if len(scores) < k:
            assert heap.threshold == 0.0
        else:
            assert heap.threshold == sorted(scores, reverse=True)[k - 1]
