"""Tests for G_DS treealization — structure, affinities, θ pruning.

These tests pin the library's G_DS output to the paper's Figures 2 and 12.
"""

from __future__ import annotations

import pytest

from repro.datasets.dblp import AUTHOR_GDS_AFFINITIES, DBLPDataset
from repro.datasets.tpch import CUSTOMER_GDS_AFFINITIES, TPCHDataset
from repro.errors import GraphError
from repro.schema_graph.affinity import (
    ComputedAffinityModel,
    attribute_affinity,
    select_attributes,
)
from repro.schema_graph.gds import JunctionJoin, RefJoin, build_gds
from repro.schema_graph.graph import SchemaGraph


class TestAuthorGDS:
    """The DBLP Author G_DS must match Figure 2 exactly after θ=0.7."""

    @pytest.fixture()
    def gds(self, dblp: DBLPDataset):
        return dblp.author_gds().prune(0.7)

    def test_node_labels_match_figure_2(self, gds) -> None:
        assert {n.label for n in gds.nodes()} == {
            "Author",
            "Paper",
            "Co_Author",
            "PaperCites",
            "PaperCitedBy",
            "Year",
            "Conference",
        }

    def test_affinities_match_figure_2(self, gds) -> None:
        for label, expected in AUTHOR_GDS_AFFINITIES.items():
            assert gds.node(label).affinity == pytest.approx(expected, abs=1e-9)

    def test_tree_shape(self, gds) -> None:
        paper = gds.node("Paper")
        assert paper.parent is gds.root
        assert {c.label for c in paper.children} == {
            "Co_Author",
            "PaperCites",
            "PaperCitedBy",
            "Year",
        }
        assert [c.label for c in gds.node("Year").children] == ["Conference"]
        assert gds.node("Conference").children == []

    def test_join_kinds(self, gds) -> None:
        assert isinstance(gds.node("Paper").join, JunctionJoin)
        assert isinstance(gds.node("Year").join, RefJoin)
        co_author = gds.node("Co_Author").join
        assert isinstance(co_author, JunctionJoin)
        assert co_author.exclude_origin  # the co-author rule
        cites = gds.node("PaperCites").join
        assert isinstance(cites, JunctionJoin)
        assert not cites.exclude_origin
        assert cites.from_column != gds.node("PaperCitedBy").join.from_column

    def test_depths(self, gds) -> None:
        assert gds.root.depth == 0
        assert gds.node("Paper").depth == 1
        assert gds.node("Co_Author").depth == 2
        assert gds.node("Conference").depth == 3

    def test_affinity_decreases_along_paths(self, dblp: DBLPDataset) -> None:
        # Eq. 1: Af is a product of factors <= 1, so children never exceed
        # their parent (on the unpruned G_DS too).
        for node in dblp.author_gds().nodes():
            if node.parent is not None:
                assert node.affinity <= node.parent.affinity + 1e-12


class TestCustomerGDS:
    """The TPC-H Customer G_DS(0.7) must keep exactly the Figure-12 set."""

    def test_theta_cut_matches_paper(self, tpch: TPCHDataset) -> None:
        gds = tpch.customer_gds().prune(0.7)
        labels = {n.label for n in gds.nodes()}
        # "Customer G_DS(0.7) includes only Customer, Nation, Region, Order,
        #  Lineitem and Partsupp relations" (Section 2.1).
        assert labels == {"Customer", "Nation", "Region", "Order", "Lineitem", "Partsupp"}

    def test_replicated_branches_exist_before_pruning(self, tpch: TPCHDataset) -> None:
        gds = tpch.customer_gds()
        labels = {n.label for n in gds.nodes()}
        # Figure 12's replicated low-affinity branches are present pre-θ.
        assert "SupplierOfNation" in labels
        assert "Supplier" in labels  # under Partsupp
        assert "Parts" in labels

    def test_affinities_match_figure_12(self, tpch: TPCHDataset) -> None:
        gds = tpch.customer_gds()
        for label in ("Nation", "Region", "Order", "Lineitem", "Partsupp", "SupplierOfNation"):
            assert gds.node(label).affinity == pytest.approx(
                CUSTOMER_GDS_AFFINITIES[label], abs=1e-9
            )

    def test_no_bounce_back_to_customer(self, tpch: TPCHDataset) -> None:
        gds = tpch.customer_gds()
        nation = gds.node("Nation")
        # Nation (reached from Customer) must not expand back into Customer.
        assert all(c.table != "customer" for c in nation.children)
        order = gds.node("Order")
        assert all(c.table != "customer" for c in order.children)


class TestSupplierGDS:
    def test_theta_cut(self, tpch: TPCHDataset) -> None:
        gds = tpch.supplier_gds().prune(0.7)
        labels = {n.label for n in gds.nodes()}
        assert labels == {
            "Supplier",
            "Nation",
            "Region",
            "Partsupp",
            "Parts",
            "Lineitem",
            "Order",
        }


class TestPruneSemantics:
    def test_prune_keeps_root_and_cascades(self, dblp: DBLPDataset) -> None:
        gds = dblp.author_gds()
        hard = gds.prune(0.99)
        assert [n.label for n in hard.nodes()] == ["Author"]

    def test_prune_is_a_copy(self, dblp: DBLPDataset) -> None:
        gds = dblp.author_gds()
        pruned = gds.prune(0.7)
        assert pruned.root is not gds.root
        assert len(pruned.nodes()) < len(gds.nodes())

    def test_duplicate_label_override_rejected(self, dblp: DBLPDataset) -> None:
        graph = SchemaGraph(dblp.db)
        model = ComputedAffinityModel(graph)
        with pytest.raises(GraphError):
            build_gds(
                graph,
                "author",
                model,
                max_depth=2,
                label_overrides={("author", "paper_via_author_id"): "author"},
            )

    def test_unknown_root_rejected(self, dblp: DBLPDataset) -> None:
        graph = SchemaGraph(dblp.db)
        model = ComputedAffinityModel(graph)
        with pytest.raises(GraphError):
            build_gds(graph, "nonexistent", model)


class TestComputedAffinity:
    def test_scores_in_unit_interval(self, dblp: DBLPDataset) -> None:
        graph = SchemaGraph(dblp.db)
        model = ComputedAffinityModel(graph)
        gds = build_gds(graph, "author", model, max_depth=3)
        for node in gds.nodes():
            assert 0.0 <= node.affinity <= 1.0

    def test_bad_weights_rejected(self, dblp: DBLPDataset) -> None:
        graph = SchemaGraph(dblp.db)
        with pytest.raises(GraphError):
            ComputedAffinityModel(graph, weights=(0.5, 0.5, 0.5, 0.5))

    def test_bad_decay_rejected(self, dblp: DBLPDataset) -> None:
        graph = SchemaGraph(dblp.db)
        with pytest.raises(GraphError):
            ComputedAffinityModel(graph, decay=0.0)


class TestAttributeSelection:
    def test_comment_columns_score_low(self) -> None:
        assert attribute_affinity("comment") < 0.5 < attribute_affinity("name")

    def test_partsupp_comment_excluded(self, tpch: TPCHDataset) -> None:
        # The paper's example: "Comment is excluded from Partsupp relation".
        selected = select_attributes(tpch.db.table("partsupp").schema)
        assert "comment" not in selected
        assert "supplycost" in selected

    def test_gds_nodes_carry_attributes(self, tpch: TPCHDataset) -> None:
        gds = tpch.customer_gds().prune(0.7)
        assert "comment" not in gds.node("Partsupp").attributes
