"""Tests for the real-data storage tier (:mod:`repro.storage`).

Covers the three tentpole pieces — SQLite round-trip + backend, the
streaming DBLP XML loader, and the buffer pool — plus the satellite
behaviors: sqlite-backend results pinned node-for-node equal to the
in-memory backends (property-tested over random databases), buffer-pool
serving equal to fully-resident serving, schema-reference keywords,
automatic live compaction, and the CLI's ``--db`` / ``load-dblp``
surface with the pinned exit codes.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import EXIT_ERROR, EXIT_OK, main
from repro.core.builder import EngineBuilder
from repro.core.options import QueryOptions
from repro.core.registry import backend_names
from repro.datasets.dblp import DBLPConfig, generate_dblp, small_dblp
from repro.datasets.tpch import small_tpch
from repro.db.mutation import Delete, Insert
from repro.errors import StorageError
from repro.storage import (
    BufferPool,
    PagedArray,
    dataset_kind,
    export_database,
    import_database,
    load_dblp_xml,
    open_dataset,
    write_dblp_xml,
)

FIXTURE_XML = Path(__file__).parent / "fixtures" / "dblp_sample.xml"


@lru_cache(maxsize=8)
def _session(seed: int):
    dataset = generate_dblp(
        DBLPConfig(n_authors=12, n_papers=20, n_conferences=3, seed=seed)
    )
    return EngineBuilder.from_dataset(dataset).build_session()


def _renders(session, keywords, **options):
    opts = QueryOptions(**options).normalized()
    return [
        (e.match.table, e.match.row_id, e.result.render())
        for e in session.keyword_query(keywords, options=opts)
    ]


# --------------------------------------------------------------------- #
# SQLite round-trip
# --------------------------------------------------------------------- #
class TestRoundTrip:
    @pytest.mark.parametrize("make", [small_dblp, small_tpch])
    def test_fingerprints_survive_the_round_trip(self, make, tmp_path) -> None:
        db = make().db
        path = tmp_path / "ds.sqlite"
        export_database(db, path)
        loaded = import_database(path)
        assert loaded.table_names == db.table_names
        for name in db.table_names:
            assert len(loaded.table(name)) == len(db.table(name))
            assert (
                loaded.table(name).content_fingerprint()
                == db.table(name).content_fingerprint()
            )

    def test_tombstone_slots_preserved(self, tmp_path) -> None:
        """Row ids are slot positions; deletions must round-trip as gaps."""
        session = EngineBuilder.from_dataset(small_dblp()).build_session()
        live = session.live_state()
        doomed = session.engine.db.table("author").pk_of_row(3)
        live.apply([Delete("writes", pk) for pk in self._writes_of(session, doomed)])
        live.apply([Delete("author", doomed)])
        db = session.engine.db
        path = tmp_path / "gappy.sqlite"
        export_database(db, path)
        loaded = import_database(path)
        for name in db.table_names:
            assert loaded.table(name).content_fingerprint() == db.table(
                name
            ).content_fingerprint()
        assert not loaded.table("author").has_pk(doomed)

    @staticmethod
    def _writes_of(session, author_pk):
        table = session.engine.db.table("writes")
        idx = table.schema.column_index("author_id")
        return [
            table.pk_of_row(row_id)
            for row_id, row in table.scan()
            if row[idx] == author_pk
        ]

    def test_missing_file_raises_storage_error(self, tmp_path) -> None:
        with pytest.raises(StorageError, match="no such SQLite file"):
            import_database(tmp_path / "nope.sqlite")

    def test_corrupt_file_raises_storage_error(self, tmp_path) -> None:
        path = tmp_path / "junk.sqlite"
        path.write_bytes(b"this is not a database")
        with pytest.raises(StorageError, match="not a repro SQLite file"):
            import_database(path)

    def test_overwrite_refused_by_default(self, tmp_path) -> None:
        path = tmp_path / "ds.sqlite"
        export_database(small_dblp().db, path)
        with pytest.raises(StorageError, match="refusing to overwrite"):
            export_database(small_dblp().db, path, overwrite=False)

    def test_dataset_kind_recorded(self, tmp_path) -> None:
        path = tmp_path / "ds.sqlite"
        export_database(small_dblp().db, path, dataset_kind="dblp")
        assert dataset_kind(path) == "dblp"


# --------------------------------------------------------------------- #
# DBLP XML loader
# --------------------------------------------------------------------- #
class TestDBLPLoader:
    def test_fixture_counts_pinned(self, tmp_path) -> None:
        report = load_dblp_xml(FIXTURE_XML, tmp_path / "dblp.sqlite")
        assert report.papers == 5
        assert report.authors == 6
        assert report.conferences == 4  # PVLDB, SIGMOD, TODS, VLDB
        assert report.years == 5
        assert report.writes == 9
        assert report.cites == 5
        assert report.skipped == 3  # no author, no year, duplicate key
        assert report.unresolved_citations == 1
        assert report.total_tuples == 5 + 6 + 4 + 5 + 9 + 5

    def test_limit_caps_accepted_papers(self, tmp_path) -> None:
        report = load_dblp_xml(FIXTURE_XML, tmp_path / "s.sqlite", limit=2)
        assert report.papers == 2

    def test_loaded_dataset_serves_queries(self, tmp_path) -> None:
        path = tmp_path / "dblp.sqlite"
        load_dblp_xml(FIXTURE_XML, path)
        assert dataset_kind(path) == "dblp"
        session = EngineBuilder.from_dataset(open_dataset(path)).build_session()
        entries = session.keyword_query(["Faloutsos"], l=6)
        assert entries
        assert "Christos Faloutsos" in entries[0].result.render()

    def test_malformed_xml_raises_storage_error(self, tmp_path) -> None:
        bad = tmp_path / "bad.xml"
        bad.write_text("<dblp><article key='x'>", encoding="utf-8")
        with pytest.raises(StorageError, match="malformed DBLP XML"):
            load_dblp_xml(bad, tmp_path / "out.sqlite")

    def test_renderer_round_trips_a_synthetic_dataset(self, tmp_path) -> None:
        dataset = small_dblp()
        xml = tmp_path / "synth.xml"
        write_dblp_xml(dataset, xml)
        report = load_dblp_xml(xml, tmp_path / "synth.sqlite")
        assert report.papers == len(dataset.db.table("paper"))
        assert report.cites == len(dataset.db.table("cites"))
        assert report.skipped == 0
        assert report.unresolved_citations == 0


# --------------------------------------------------------------------- #
# sqlite backend == in-memory backends (satellite 3)
# --------------------------------------------------------------------- #
class TestSqliteBackendEquality:
    def test_backend_registered(self) -> None:
        assert "sqlite" in backend_names()

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=3),
        l=st.integers(min_value=1, max_value=18),
        source=st.sampled_from(["complete", "prelim"]),
    )
    def test_results_node_for_node_equal(self, seed, l, source) -> None:
        session = _session(seed)
        expected = _renders(session, ["Faloutsos"], l=l, source=source)
        for backend in ("database", "sqlite"):
            got = _renders(
                session, ["Faloutsos"], l=l, source=source, backend=backend
            )
            assert got == expected, backend

    def test_complete_os_identical_across_random_subjects(self) -> None:
        session = _session(1)
        rng = np.random.default_rng(11)
        authors = len(session.engine.db.table("author"))
        for row_id in rng.choice(authors, size=5, replace=False):
            base = session.engine.complete_os("author", int(row_id))
            via_sql = session.engine.complete_os(
                "author", int(row_id), backend="sqlite"
            )
            assert via_sql.render() == base.render()
            assert via_sql.size == base.size

    def test_sql_statements_are_billed_as_io(self) -> None:
        session = _session(2)
        qi = session.engine.query_interface
        qi.reset_counters()
        session.keyword_query(
            ["Faloutsos"], options=QueryOptions(l=8, backend="sqlite").normalized()
        )
        assert qi.io_accesses > 0
        assert qi.rows_fetched > 0


# --------------------------------------------------------------------- #
# Buffer pool
# --------------------------------------------------------------------- #
class TestBufferPool:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_paged_array_reads_equal_base(self, data) -> None:
        n = data.draw(st.integers(min_value=1, max_value=200))
        base = np.arange(n, dtype=np.int32) * 3
        pool = BufferPool(256, page_bytes=32)  # 8 int32 per page
        paged = PagedArray(base, pool, "arr")
        idx = data.draw(st.integers(min_value=-n, max_value=n - 1))
        assert paged[idx] == base[idx]
        lo = data.draw(st.integers(min_value=0, max_value=n))
        hi = data.draw(st.integers(min_value=lo, max_value=n))
        np.testing.assert_array_equal(paged[lo:hi], base[lo:hi])
        fancy = np.array(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1), max_size=40
                )
            ),
            dtype=np.int64,
        )
        np.testing.assert_array_equal(paged[fancy], base[fancy])
        assert pool.resident_bytes <= 256

    def test_eviction_respects_capacity_and_pins(self) -> None:
        pool = BufferPool(64, page_bytes=32)
        base = np.arange(64, dtype=np.int32)  # 8 pages of 8 int32
        loads = [0]

        def loader_for(page_no: int):
            def loader() -> np.ndarray:
                loads[0] += 1
                return base[page_no * 8 : (page_no + 1) * 8]

            return loader

        first = pool.fetch("a", 0, loader_for(0))  # stays pinned
        np.testing.assert_array_equal(first, base[:8])
        for page in range(1, 8):
            got = pool.fetch("a", page, loader_for(page))
            pool.unpin("a", page)
            np.testing.assert_array_equal(got, base[page * 8 : (page + 1) * 8])
        assert pool.evictions > 0
        # the pinned page survived every eviction pass
        np.testing.assert_array_equal(pool.fetch("a", 0, loader_for(0)), base[:8])
        assert loads[0] == 8  # page 0 loaded exactly once
        stats = pool.stats()
        assert stats["pool_misses"] == 8
        assert stats["pool_hits"] >= 1

    def test_pool_serving_equals_resident_serving(self) -> None:
        dataset = small_dblp()
        plain = EngineBuilder.from_dataset(dataset).build_session()
        paged = (
            EngineBuilder.from_dataset(dataset)
            .with_buffer_pool(16 * 1024, page_bytes=512)
            .build_session()
        )
        for l in (4, 12):
            for source in ("complete", "prelim"):
                assert _renders(paged, ["Faloutsos"], l=l, source=source) == (
                    _renders(plain, ["Faloutsos"], l=l, source=source)
                )
        pool = paged.engine.buffer_pool
        assert pool is not None
        assert pool.misses > 0
        assert pool.resident_bytes <= 16 * 1024

    def test_pool_counters_surface_in_cache_stats(self) -> None:
        session = (
            EngineBuilder.from_dataset(small_dblp())
            .with_buffer_pool(8 * 1024, page_bytes=512)
            .build_session()
        )
        session.keyword_query(["Faloutsos"], l=8)
        stats = session.cache_stats()
        assert stats.pool_misses > 0
        assert stats.as_dict()["pool_misses"] == stats.pool_misses

    def test_page_order_expansion_preserves_trees(self) -> None:
        """PagedDataGraph flips the frontier into page order; trees must
        not change (the keys encode original frontier positions)."""
        dataset = small_dblp()
        plain = EngineBuilder.from_dataset(dataset).build_session()
        paged = (
            EngineBuilder.from_dataset(dataset)
            .with_buffer_pool(4 * 1024, page_bytes=256)
            .build_session()
        )
        assert paged.engine.data_graph.prefers_page_order
        for row_id in (0, 3, 7):
            assert (
                paged.complete_os("author", row_id).render()
                == plain.complete_os("author", row_id).render()
            )


# --------------------------------------------------------------------- #
# Schema-reference keywords (satellite 2)
# --------------------------------------------------------------------- #
class TestSchemaReferences:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=3),
        keywords=st.lists(
            st.sampled_from(
                ["Faloutsos", "Christos", "zzznothing", "Mining"]
            ),
            min_size=1,
            max_size=3,
        ),
    )
    def test_no_schema_token_means_plain_results(self, seed, keywords) -> None:
        """Queries with no schema-name tokens resolve exactly as plain
        conjunctive keyword search (the pre-PR semantics)."""
        searcher = _session(seed).engine.searcher
        assert all(searcher.schema_reference(k) is None for k in keywords)
        postings = searcher.index.conjunctive(keywords)
        expected = sorted(
            (
                (p.table, p.row_id)
                for p in postings
            ),
            key=lambda pair: (
                -searcher.store.importance(pair[0], pair[1]),
                pair[0],
                pair[1],
            ),
        )
        got = [(m.table, m.row_id) for m in searcher.search(keywords)]
        assert got == expected

    def test_schema_reference_resolution(self) -> None:
        searcher = _session(0).engine.searcher
        assert searcher.schema_reference("author") == frozenset({"author"})
        assert searcher.schema_reference("papers") == frozenset({"paper"})
        assert searcher.schema_reference("Author0") is None
        assert searcher.schema_reference("faloutsos") is None

    def test_reference_boosts_named_relation(self) -> None:
        session = EngineBuilder.from_dataset(small_dblp()).build_session()
        # an author sharing a token with paper titles, so one keyword
        # matches subjects in both R_DS relations
        session.live_state().apply(
            [Insert("author", {"author_id": 97000, "name": "Adaptive Quill"})]
        )
        searcher = session.engine.searcher
        plain = searcher.search(["Adaptive"])
        assert {m.table for m in plain} == {"author", "paper"}
        for boost_kw, table in (("papers", "paper"), ("authors", "author")):
            boosted = searcher.search([boost_kw, "Adaptive"])
            assert {(m.table, m.row_id) for m in plain} == {
                (m.table, m.row_id) for m in boosted
            }
            band = sum(1 for m in plain if m.table == table)
            assert all(m.table == table for m in boosted[:band])

    def test_all_reference_query_lists_top_subjects(self) -> None:
        session = EngineBuilder.from_dataset(small_dblp()).build_session()
        matches = session.engine.searcher.search(["author"])
        assert len(matches) == len(session.engine.db.table("author"))
        importances = [m.importance for m in matches]
        assert importances == sorted(importances, reverse=True)


# --------------------------------------------------------------------- #
# Automatic live compaction (satellite 1)
# --------------------------------------------------------------------- #
class TestAutoCompaction:
    def test_overlay_folds_at_threshold_and_queries_hold(self) -> None:
        session = EngineBuilder.from_dataset(small_dblp()).build_session()
        live = session.live_state()
        live.auto_compact_threshold = 4
        before = _renders(session, ["Faloutsos"], l=10)
        for i in range(6):
            live.apply(
                [Insert("author", {"author_id": 91000 + i, "name": f"Zz P{i}"})]
            )
        stats = live.stats()
        assert stats["auto_compactions"] >= 1
        assert stats["overlay_size"] == 0
        assert not live.graph.overlay_size and not live.index.overlay_size
        assert _renders(session, ["Faloutsos"], l=10) == before
        # the folded inserts are really there
        assert session.engine.searcher.search(["Zz"])

    def test_disabled_by_default(self) -> None:
        session = EngineBuilder.from_dataset(small_dblp()).build_session()
        live = session.live_state()
        assert live.auto_compact_threshold is None
        live.apply([Insert("author", {"author_id": 95000, "name": "Qq R"})])
        stats = live.stats()
        assert stats["auto_compactions"] == 0
        assert stats["overlay_size"] > 0


# --------------------------------------------------------------------- #
# CLI surface (satellite 6)
# --------------------------------------------------------------------- #
class TestStorageCLI:
    def test_load_dblp_then_query_db(self, tmp_path, capsys) -> None:
        out = tmp_path / "dblp.sqlite"
        assert (
            main(["load-dblp", "--xml", str(FIXTURE_XML), "--out", str(out)])
            == EXIT_OK
        )
        assert "total tuples" in capsys.readouterr().out
        code = main(
            ["query", "--db", str(out), "--keywords", "Faloutsos", "--l", "6"]
        )
        assert code == EXIT_OK
        assert "Christos Faloutsos" in capsys.readouterr().out

    def test_missing_db_file_is_exit_two(self, tmp_path, capsys) -> None:
        code = main(
            ["query", "--db", str(tmp_path / "nope.sqlite"), "--keywords", "x"]
        )
        assert code == EXIT_ERROR
        assert "no such SQLite file" in capsys.readouterr().err

    def test_corrupt_db_file_is_exit_two(self, tmp_path, capsys) -> None:
        path = tmp_path / "corrupt.sqlite"
        path.write_bytes(b"garbage bytes, not sqlite")
        code = main(["query", "--db", str(path), "--keywords", "x"])
        assert code == EXIT_ERROR
        assert "not a repro SQLite file" in capsys.readouterr().err

    def test_db_with_shards_rejected(self, tmp_path, capsys) -> None:
        path = tmp_path / "ds.sqlite"
        export_database(small_dblp().db, path, dataset_kind="dblp")
        code = main(
            ["serve", "--db", str(path), "--shards", "2", "--port", "0"]
        )
        assert code == EXIT_ERROR
        assert "--shards" in capsys.readouterr().err

    def test_precompute_and_pool_over_db(self, tmp_path, capsys) -> None:
        db_path = tmp_path / "ds.sqlite"
        export_database(small_dblp().db, db_path, dataset_kind="dblp")
        snap = tmp_path / "snap.d"
        assert (
            main(
                [
                    "precompute", "--db", str(db_path),
                    "--out", str(snap), "--table", "author",
                ]
            )
            == EXIT_OK
        )
        capsys.readouterr()
        code = main(
            [
                "query", "--db", str(db_path),
                "--snapshot", str(snap), "--source", "complete",
                "--pool-bytes", "65536",
                "--keywords", "Faloutsos", "--l", "8",
            ]
        )
        assert code == EXIT_OK
        assert "result 1" in capsys.readouterr().out
