"""A Figure-7-style walkthrough of prelim-l OS generation.

Figure 7 of the paper traces Algorithm 4 on a small Author OS: the top-l
PQ fills, ``largest-l`` rises, Avoidance Condition 2 caps the PaperCites /
Year / Co-Author joins, and Avoidance Condition 1 skips the Conference
subtree outright.  The paper's printed node ids/edges are garbled by text
extraction (see EXPERIMENTS.md), so this test rebuilds an equivalent
database with *hand-assigned global importances* and asserts the same
behavioural trace:

* the prelim-5 OS contains exactly the five largest local importances
  (Definition 2);
* the Conference relation is avoided by Condition 1 (no conference tuple
  is ever extracted);
* Condition 2 fires on the leaf relations;
* fruitless low-importance tuples are absent from the prelim OS while the
  complete OS contains them;
* the prelim OS still misses a connector that the optimal size-5 OS needs
  — reproducing the paper's remark that "the prelim-5 OS of our example
  does not contain the ca16 node which belongs to the optimal size-5 OS"
  is data-dependent, so we assert the weaker, always-true form: DP on the
  prelim OS never beats DP on the complete OS.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dp import optimal_size_l
from repro.core.generation import DataGraphBackend, generate_os
from repro.core.prelim import generate_prelim_os
from repro.datagraph.builder import build_data_graph
from repro.db import Column, ColumnType, Database, ForeignKey, TableSchema
from repro.ranking.store import ImportanceStore, annotate_gds
from repro.schema_graph.affinity import ManualAffinityModel
from repro.schema_graph.gds import build_gds
from repro.schema_graph.graph import SchemaGraph

INT, TEXT = ColumnType.INT, ColumnType.TEXT


@pytest.fixture(scope="module")
def figure7():
    """A DBLP-shaped micro-database with hand-assigned importances.

    Author a1 wrote p2 and p3.  p2 is cited by pb4/pb5, cites pc6/pc7, has
    year y8 (conference c17) and co-authors ca9/ca10.  p3 cites pc11, has
    year y14 (conference c18) and co-authors ca15/ca16.
    """
    db = Database("figure7")
    db.create_table(
        TableSchema(
            "conference",
            [Column("conf_id", INT), Column("name", TEXT, text_searchable=True)],
            primary_key="conf_id",
        )
    )
    db.create_table(
        TableSchema(
            "year",
            [
                Column("year_id", INT),
                Column("conference_id", INT),
                Column("year", INT),
            ],
            primary_key="year_id",
            foreign_keys=[ForeignKey("conference_id", "conference", "conf_id")],
        )
    )
    db.create_table(
        TableSchema(
            "paper",
            [
                Column("paper_id", INT),
                Column("title", TEXT, text_searchable=True),
                Column("year_id", INT),
            ],
            primary_key="paper_id",
            foreign_keys=[ForeignKey("year_id", "year", "year_id")],
        )
    )
    db.create_table(
        TableSchema(
            "author",
            [Column("author_id", INT), Column("name", TEXT, text_searchable=True)],
            primary_key="author_id",
        )
    )
    db.create_table(
        TableSchema(
            "writes",
            [
                Column("writes_id", INT),
                Column("author_id", INT),
                Column("paper_id", INT),
            ],
            primary_key="writes_id",
            foreign_keys=[
                ForeignKey("author_id", "author", "author_id"),
                ForeignKey("paper_id", "paper", "paper_id"),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "cites",
            [
                Column("cites_id", INT),
                Column("citing_id", INT),
                Column("cited_id", INT),
            ],
            primary_key="cites_id",
            foreign_keys=[
                ForeignKey("citing_id", "paper", "paper_id"),
                ForeignKey("cited_id", "paper", "paper_id"),
            ],
        )
    )

    # Conferences c17, c18; years y8 (c17), y14 (c18).
    db.insert("conference", [17, "c17"])
    db.insert("conference", [18, "c18"])
    db.insert("year", [8, 17, 1999])
    db.insert("year", [14, 18, 2001])
    # Papers: subject papers p2, p3; citers pb4, pb5; cited pc6, pc7, pc11.
    for pid, year in ((2, 8), (3, 14), (4, 8), (5, 8), (6, 14), (7, 14), (11, 8)):
        db.insert("paper", [pid, f"p{pid}", year])
    # Authors: subject a1; co-authors ca9, ca10 (p2), ca15, ca16 (p3).
    for aid in (1, 9, 10, 15, 16):
        db.insert("author", [aid, f"a{aid}"])
    writes = [(1, 2), (1, 3), (9, 2), (10, 2), (15, 3), (16, 3)]
    for wid, (aid, pid) in enumerate(writes):
        db.insert("writes", [wid, aid, pid])
    cites = [(2, 6), (2, 7), (4, 2), (5, 2), (3, 11)]
    for cid, (citing, cited) in enumerate(cites):
        db.insert("cites", [cid, citing, cited])
    db.validate_integrity()
    db.ensure_fk_indexes()

    # Hand-assigned global importances (affinity = 1 everywhere, so local
    # importance == global importance; values echo Figure 7's ordering:
    # y14 .70 > ca15 .60 > a1 .40 = ca9 .40 > pc6 .37 > ... > c17/c18 .13).
    importance = {
        "author": {1: 0.40, 9: 0.40, 10: 0.19, 15: 0.60, 16: 0.27},
        "paper": {2: 0.22, 3: 0.12, 4: 0.24, 5: 0.19, 6: 0.37, 7: 0.17, 11: 0.24},
        "year": {8: 0.25, 14: 0.70},
        "conference": {17: 0.13, 18: 0.13},
        "writes": {},
        "cites": {},
    }
    arrays = {}
    for table_name, by_pk in importance.items():
        table = db.table(table_name)
        arr = np.zeros(len(table))
        for pk, value in by_pk.items():
            arr[table.row_id_for_pk(pk)] = value
        arrays[table_name] = arr
    store = ImportanceStore(arrays)

    graph = SchemaGraph(db)
    affinities = {
        "Author": 1.0, "Paper": 1.0, "Co_Author": 1.0,
        "PaperCites": 1.0, "PaperCitedBy": 1.0, "Year": 1.0, "Conference": 1.0,
    }
    overrides = {
        ("Author", "paper_via_author_id"): "Paper",
        ("Paper", "co_author"): "Co_Author",
        ("Paper", "paper_via_citing_id"): "PaperCites",
        ("Paper", "paper_via_cited_id"): "PaperCitedBy",
        ("Paper", "year"): "Year",
        ("Year", "conference"): "Conference",
    }
    gds = build_gds(
        graph,
        "author",
        ManualAffinityModel(affinities, default_edge=0.01),
        max_depth=3,
        label_overrides=overrides,
        root_label="Author",
    ).prune(0.5)
    annotate_gds(gds, store)
    backend = DataGraphBackend(db, build_data_graph(db))
    a1_row = db.table("author").row_id_for_pk(1)
    return db, gds, store, backend, a1_row


class TestFigure7Walkthrough:
    def test_complete_os_contents(self, figure7) -> None:
        db, gds, store, backend, a1 = figure7
        complete = generate_os(a1, gds, backend, store)
        # a1 + 2 papers + (p2: 2 citedby + 2 cites + year + 2 coauthors = 7)
        #   + (p3: 1 cites + year + 2 coauthors = 4) + 2 conferences = 16.
        assert complete.size == 16

    def test_prelim_contains_exact_top_5(self, figure7) -> None:
        db, gds, store, backend, a1 = figure7
        prelim, stats = generate_prelim_os(a1, gds, backend, store, l=5)
        weights = sorted((n.weight for n in prelim.nodes), reverse=True)[:5]
        assert weights == pytest.approx([0.70, 0.60, 0.40, 0.40, 0.37])

    def test_conference_subtree_avoided(self, figure7) -> None:
        """Avoidance Condition 1: once largest-l = 0.37 > max(Conference) =
        0.13, conference joins are never issued."""
        db, gds, store, backend, a1 = figure7
        prelim, stats = generate_prelim_os(a1, gds, backend, store, l=5)
        assert all(n.table != "conference" for n in prelim.nodes)
        assert stats.avoided_subtrees >= 1

    def test_condition_2_fires_on_leaf_relations(self, figure7) -> None:
        db, gds, store, backend, a1 = figure7
        _prelim, stats = generate_prelim_os(a1, gds, backend, store, l=5)
        assert stats.limited_extractions >= 1

    def test_fruitless_tuples_pruned(self, figure7) -> None:
        """pc7 (.17) and ca10 (.19) are below the final largest-l (0.37) and
        fetched through capped joins after the threshold rose, so the prelim
        OS drops (some of) them while the complete OS has them all."""
        db, gds, store, backend, a1 = figure7
        complete = generate_os(a1, gds, backend, store)
        prelim, _stats = generate_prelim_os(a1, gds, backend, store, l=5)
        assert prelim.size < complete.size

    def test_dp_on_prelim_never_beats_complete(self, figure7) -> None:
        db, gds, store, backend, a1 = figure7
        complete = generate_os(a1, gds, backend, store)
        prelim, _stats = generate_prelim_os(a1, gds, backend, store, l=5)
        best_complete = optimal_size_l(complete, 5).importance
        best_prelim = optimal_size_l(prelim, 5).importance
        assert best_prelim <= best_complete + 1e-12

    def test_optimal_size_5_uses_connectors(self, figure7) -> None:
        """The optimal size-5 OS must include p3 (.12, a weak connector) to
        reach y14 (.70) and ca15 (.60) — the connectivity-over-importance
        trade-off of Definition 1 and the paper's Figure 3 discussion."""
        db, gds, store, backend, a1 = figure7
        complete = generate_os(a1, gds, backend, store)
        result = optimal_size_l(complete, 5)
        tables_and_pks = {
            (n.table, db.table(n.table).pk_of_row(n.row_id))
            for n in result.summary.nodes
        }
        assert ("paper", 3) in tables_and_pks  # the connector
        assert ("year", 14) in tables_and_pks  # the treasure
        assert ("author", 15) in tables_and_pks  # ca15
