"""Tests for the JSON export of summaries and results."""

from __future__ import annotations

import json

from repro.core.export import result_to_dict, result_to_json, summary_to_dict


class TestSummaryExport:
    def test_tree_shape_preserved(self, dblp_engine) -> None:
        tree = dblp_engine.complete_os("author", 2)
        payload = summary_to_dict(tree)
        assert payload["size"] == tree.size

        def count(node: dict) -> int:
            return 1 + sum(count(c) for c in node["children"])

        assert count(payload["root"]) == tree.size

    def test_attributes_included_with_db(self, dblp_engine) -> None:
        tree = dblp_engine.complete_os("author", 0)
        payload = summary_to_dict(tree)
        assert payload["root"]["attributes"] == {"name": "Christos Faloutsos"}
        assert payload["root"]["pk"] == 0

    def test_no_db_omits_attributes(self, star_tree) -> None:
        payload = summary_to_dict(star_tree)
        assert "attributes" not in payload["root"]
        assert payload["root"]["weight"] == star_tree.root.weight


class TestResultExport:
    def test_round_trips_through_json(self, dblp_engine) -> None:
        result = dblp_engine.size_l("author", 0, 8, source="prelim")
        text = result_to_json(result)
        decoded = json.loads(text)
        assert decoded["l"] == 8
        assert decoded["size"] == 8
        assert len(decoded["selected_uids"]) == 8
        assert decoded["summary"]["size"] == 8

    def test_non_json_stats_stringified(self, dblp_engine) -> None:
        result = dblp_engine.size_l("author", 0, 5, source="prelim")
        payload = result_to_dict(result)
        assert isinstance(payload["stats"]["prelim"], str)  # PrelimStats repr
        assert payload["stats"]["source"] == "prelim"

    def test_importance_matches(self, dblp_engine) -> None:
        result = dblp_engine.size_l("author", 1, 6)
        payload = result_to_dict(result)
        total = payload["summary"]["total_importance"]
        assert abs(total - result.importance) < 1e-9
