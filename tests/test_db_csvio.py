"""CSV round-trip tests."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.db.csvio import export_database, export_table, import_database, import_table
from repro.db.database import Database
from repro.db.schema import Column, TableSchema
from repro.db.types import ColumnType
from repro.errors import SchemaError


def _make_db() -> Database:
    db = Database("csv")
    db.create_table(
        TableSchema(
            "sample",
            [
                Column("id", ColumnType.INT),
                Column("label", ColumnType.TEXT, nullable=True),
                Column("score", ColumnType.FLOAT, nullable=True),
                Column("flag", ColumnType.BOOL, nullable=True),
            ],
            primary_key="id",
        )
    )
    return db


def test_round_trip_preserves_values_and_nulls(tmp_path: Path) -> None:
    db = _make_db()
    db.insert("sample", [1, "alpha", 1.25, True])
    db.insert("sample", [2, None, None, None])
    path = tmp_path / "sample.csv"
    assert export_table(db.table("sample"), path) == 2

    fresh = _make_db()
    assert import_table(fresh.table("sample"), path) == 2
    assert fresh.table("sample").row(0) == (1, "alpha", 1.25, True)
    assert fresh.table("sample").row(1) == (2, None, None, None)


def test_import_rejects_wrong_header(tmp_path: Path) -> None:
    path = tmp_path / "bad.csv"
    path.write_text("wrong,header\n1,2\n", encoding="utf-8")
    with pytest.raises(SchemaError):
        import_table(_make_db().table("sample"), path)


def test_import_rejects_empty_file(tmp_path: Path) -> None:
    path = tmp_path / "empty.csv"
    path.write_text("", encoding="utf-8")
    with pytest.raises(SchemaError):
        import_table(_make_db().table("sample"), path)


def test_export_import_database(tmp_path: Path) -> None:
    db = _make_db()
    db.insert("sample", [1, "x", 0.5, False])
    counts = export_database(db, tmp_path)
    assert counts == {"sample": 1}

    fresh = _make_db()
    assert import_database(fresh, tmp_path) == {"sample": 1}
    assert fresh.table("sample").row(0) == (1, "x", 0.5, False)


def test_import_database_skips_missing_files(tmp_path: Path) -> None:
    fresh = _make_db()
    assert import_database(fresh, tmp_path) == {}
