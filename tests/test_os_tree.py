"""Tests for the OS tree structure and subset materialisation."""

from __future__ import annotations

import pytest

from repro.core.os_tree import validate_l
from repro.errors import InvalidSizeError, SummaryError

from tests.conftest import make_tree


class TestStructure:
    def test_bfs_order_parents_first(self, paper_figure4_tree) -> None:
        seen: set[int] = set()
        for node in paper_figure4_tree.nodes:
            if node.parent is not None:
                assert node.parent.uid in seen
            seen.add(node.uid)

    def test_size_and_depth(self, paper_figure4_tree) -> None:
        assert paper_figure4_tree.size == 14
        assert paper_figure4_tree.max_depth() == 3

    def test_leaves(self, star_tree) -> None:
        assert {n.uid for n in star_tree.leaves()} == {1, 2, 3, 4, 5}

    def test_subtree_sizes(self, paper_figure4_tree) -> None:
        sizes = paper_figure4_tree.subtree_sizes()
        assert sizes[0] == 14
        assert sizes[3] == 4  # node 3 + children 7, 8, 9
        assert sizes[4] == 4  # node 4 + 10 + 11 + 13
        assert sizes[13] == 1

    def test_post_order_children_first(self, paper_figure4_tree) -> None:
        seen: set[int] = set()
        for node in paper_figure4_tree.post_order():
            for child in node.children:
                assert child.uid in seen
            seen.add(node.uid)

    def test_total_importance(self, star_tree) -> None:
        assert star_tree.total_importance() == pytest.approx(25.0)

    def test_path_from_root(self, paper_figure4_tree) -> None:
        node13 = paper_figure4_tree.node(13)
        assert [n.uid for n in node13.path_from_root()] == [0, 4, 11, 13]

    def test_unknown_uid_raises(self, star_tree) -> None:
        with pytest.raises(SummaryError):
            star_tree.node(999)


class TestMaterialiseSubset:
    def test_connected_subset(self, paper_figure4_tree) -> None:
        subset = paper_figure4_tree.materialise_subset({0, 4, 11, 13})
        assert subset.size == 4
        assert subset.total_importance() == pytest.approx(30 + 31 + 30 + 60)
        assert [n.uid for n in subset.node(13).path_from_root()] == [0, 4, 11, 13]

    def test_missing_root_rejected(self, paper_figure4_tree) -> None:
        with pytest.raises(SummaryError, match="root"):
            paper_figure4_tree.materialise_subset({4, 11})

    def test_disconnected_subset_rejected(self, paper_figure4_tree) -> None:
        with pytest.raises(SummaryError, match="disconnected"):
            paper_figure4_tree.materialise_subset({0, 13})  # 4, 11 missing

    def test_unknown_uid_rejected(self, star_tree) -> None:
        with pytest.raises(SummaryError):
            star_tree.materialise_subset({0, 77})

    def test_subset_preserves_uids_and_weights(self, chain_tree) -> None:
        subset = chain_tree.materialise_subset({0, 1, 2})
        assert {n.uid for n in subset.nodes} == {0, 1, 2}
        assert subset.node(2).weight == chain_tree.node(2).weight


class TestRendering:
    def test_render_without_db_uses_uids(self, star_tree) -> None:
        text = star_tree.render()
        assert "Stub#0" in text
        assert len(text.splitlines()) == 6

    def test_render_max_nodes(self, star_tree) -> None:
        text = star_tree.render(max_nodes=2)
        assert "more tuples" in text

    def test_render_with_database(self, dblp_engine, dblp) -> None:
        tree = dblp_engine.complete_os("author", 0)
        text = tree.render(max_nodes=5)
        assert text.splitlines()[0] == "Author: Christos Faloutsos"

    def test_word_count_positive(self, dblp_engine) -> None:
        tree = dblp_engine.complete_os("author", 2)
        assert tree.word_count() > tree.size  # every line has >= 1 word


class TestValidateL:
    @pytest.mark.parametrize("bad", [0, -1, 2.5, "5", True, None])
    def test_rejects_non_positive_and_non_int(self, bad) -> None:
        with pytest.raises(InvalidSizeError):
            validate_l(bad)

    def test_accepts_positive_int(self) -> None:
        assert validate_l(7) == 7


class TestMakeTreeHelper:
    def test_make_tree_shape(self) -> None:
        tree = make_tree({0: [1, 2]}, {0: 1.0, 1: 2.0, 2: 3.0})
        assert tree.size == 3
        assert {c.uid for c in tree.root.children} == {1, 2}
