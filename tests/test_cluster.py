"""The sharded serving cluster: transport, worker pool, router, recovery.

The expensive fixtures are module-scoped: one 3-shard cluster (three
worker subprocesses over the scale-0.5 DBLP dataset) and one
single-process reference dispatcher over the *same* recipe.  Every
routing test is an equality test against that reference — sharding is an
implementation detail of the service, so the wire behaviour must be
bit-identical minus timing fields.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.cluster import (
    Cluster,
    ClusterRouter,
    DatasetSpec,
    TransportError,
    WorkerSpec,
    recv_frame,
    send_frame,
)
from repro.core.cache import CacheStats
from repro.core.options import QueryOptions
from repro.errors import ClusterError
from repro.service.deployment import Deployment
from repro.service.dispatch import ServiceDispatcher
from repro.service.protocol import Cursor

SEED, SCALE = 7, 0.5
KEYWORDS = ["Faloutsos"]
OPTIONS = {"l": 8}

#: Entry fields stable across recomputation (stats carries wall-clock
#: timings and cache-hit flags, which legitimately differ per process).
_STABLE = (
    "rank",
    "table",
    "row_id",
    "match_importance",
    "importance",
    "l",
    "algorithm",
    "selected_uids",
    "rendered",
)


def stable(entry: dict) -> dict:
    return {key: entry[key] for key in _STABLE}


# --------------------------------------------------------------------- #
# Transport framing (no processes involved)
# --------------------------------------------------------------------- #
class TestTransport:
    def test_frame_round_trip(self) -> None:
        a, b = socket.socketpair()
        try:
            message = {"id": 1, "endpoint": "/v1/query", "payload": {"x": [1, 2]}}
            send_frame(a, message)
            assert recv_frame(b) == message
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self) -> None:
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_is_transport_error(self) -> None:
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\x10partial")  # announces 16, sends 7
            a.close()
            with pytest.raises(TransportError, match="mid-frame|header"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected_before_allocation(self) -> None:
        a, b = socket.socketpair()
        try:
            a.sendall((1 << 31).to_bytes(4, "big"))
            with pytest.raises(TransportError, match="cap"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_frame_rejected(self) -> None:
        a, b = socket.socketpair()
        try:
            payload = b"[1,2,3]"
            a.sendall(len(payload).to_bytes(4, "big") + payload)
            with pytest.raises(TransportError, match="JSON object"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_idle_timeout_propagates_for_drain_polling(self) -> None:
        """A timeout with no bytes read must stay ``socket.timeout`` —
        the worker's connection loop uses it to re-check the drain flag."""
        a, b = socket.socketpair()
        try:
            b.settimeout(0.05)
            with pytest.raises(socket.timeout):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestWorkerSpec:
    def test_round_trips_through_json(self) -> None:
        spec = WorkerSpec(
            shard_index=2,
            shard_count=4,
            datasets=(DatasetSpec(name="d", database="dblp", scale=0.5),),
            ready_file="/tmp/r.json",
            cache_size=16,
        )
        again = WorkerSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert again == spec

    def test_invalid_spec_is_a_cluster_error(self) -> None:
        with pytest.raises(ClusterError, match="invalid worker spec"):
            WorkerSpec.from_dict({"shard_index": 0})


# --------------------------------------------------------------------- #
# The live cluster (module-scoped: 3 worker subprocesses)
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def reference():
    deployment = Deployment().add(
        "dblp", named="dblp", seed=SEED, scale=SCALE, cache_size=64
    )
    yield ServiceDispatcher(deployment)
    deployment.close()


@pytest.fixture(scope="module")
def cluster():
    spec = DatasetSpec(name="dblp", database="dblp", seed=SEED, scale=SCALE)
    with Cluster([spec], shards=3, cache_size=16, startup_timeout=180) as running:
        yield running


class TestClusterEquality:
    def test_query_is_node_for_node_identical(self, cluster, reference) -> None:
        payload = {"dataset": "dblp", "keywords": KEYWORDS, "options": OPTIONS}
        status, sharded = cluster.dispatch_safe("/v1/query", payload)
        ref_status, single = reference.dispatch_safe("/v1/query", payload)
        assert (status, ref_status) == (200, 200)
        assert [stable(e) for e in sharded["results"]] == [
            stable(e) for e in single["results"]
        ]
        assert sharded["total_matches"] == single["total_matches"]
        assert sharded["next_cursor"] == single["next_cursor"]
        assert sharded["keywords"] == single["keywords"]
        # and against the library entry point itself, node for node
        session = reference.deployment.session("dblp")
        direct = session.keyword_query(KEYWORDS, options=QueryOptions(l=8))
        assert [tuple(e["selected_uids"]) for e in sharded["results"]] == [
            tuple(sorted(entry.result.selected_uids)) for entry in direct
        ]

    def test_paging_crosses_shard_boundaries(self, cluster, reference) -> None:
        """page_size=1 forces every page onto whichever shard owns that
        match — the concatenation must equal the unpaged ranking."""
        base = {"dataset": "dblp", "keywords": KEYWORDS, "options": OPTIONS}
        _, unpaged = reference.dispatch_safe("/v1/query", base)
        collected, cursor = [], None
        for _ in range(50):
            payload = dict(base, page_size=1)
            if cursor is not None:
                payload["cursor"] = cursor
            status, page = cluster.dispatch_safe("/v1/query", payload)
            assert status == 200, page
            assert len(page["results"]) == 1
            collected.extend(page["results"])
            cursor = page["next_cursor"]
            if cursor is None:
                break
        assert [stable(e) for e in collected] == [
            stable(e) for e in unpaged["results"]
        ]

    def test_cursors_interoperate_between_topologies(
        self, cluster, reference
    ) -> None:
        """A cursor minted by the single-process server resumes correctly
        on the cluster (and vice versa) — sharding must not change what a
        cursor means."""
        base = {
            "dataset": "dblp",
            "keywords": KEYWORDS,
            "options": OPTIONS,
            "page_size": 1,
        }
        _, first_single = reference.dispatch_safe("/v1/query", base)
        status, second_sharded = cluster.dispatch_safe(
            "/v1/query", dict(base, cursor=first_single["next_cursor"])
        )
        assert status == 200
        _, second_single = reference.dispatch_safe(
            "/v1/query", dict(base, cursor=first_single["next_cursor"])
        )
        assert [stable(e) for e in second_sharded["results"]] == [
            stable(e) for e in second_single["results"]
        ]
        _, first_sharded = cluster.dispatch_safe("/v1/query", base)
        assert first_sharded["next_cursor"] == first_single["next_cursor"]

    def test_stale_cursor_is_the_pinned_400(self, cluster) -> None:
        bogus = Cursor(rank=0, table="paper", row_id=999_999).encode()
        status, body = cluster.dispatch_safe(
            "/v1/query",
            {
                "dataset": "dblp",
                "keywords": KEYWORDS,
                "options": OPTIONS,
                "cursor": bogus,
            },
        )
        assert status == 400
        assert body["error"]["type"] == "RequestValidationError"
        assert "stale cursor" in body["error"]["message"]

    def test_size_l_and_batch_match_single_process(
        self, cluster, reference
    ) -> None:
        _, single = reference.dispatch_safe(
            "/v1/query", {"dataset": "dblp", "keywords": KEYWORDS, "options": OPTIONS}
        )
        subjects = [[e["table"], e["row_id"]] for e in single["results"]]
        payload = {"dataset": "dblp", "subjects": subjects, "options": OPTIONS}
        status, sharded_batch = cluster.dispatch_safe("/v1/batch", payload)
        _, single_batch = reference.dispatch_safe("/v1/batch", payload)
        assert status == 200
        assert [stable(e) for e in sharded_batch["results"]] == [
            stable(e) for e in single_batch["results"]
        ]
        one = {
            "dataset": "dblp",
            "table": subjects[0][0],
            "row_id": subjects[0][1],
            "options": OPTIONS,
        }
        status, sharded_one = cluster.dispatch_safe("/v1/size-l", one)
        _, single_one = reference.dispatch_safe("/v1/size-l", one)
        assert status == 200
        assert stable(sharded_one["result"]) == stable(single_one["result"])


class TestClusterErrors:
    """Every pinned single-process error survives the extra hop."""

    def test_validation_errors(self, cluster, reference) -> None:
        cases = [
            ("/v1/size-l", {"dataset": "dblp", "table": "author"}),  # no row_id
            ("/v1/size-l", "not an object"),
            ("/v1/batch", {"dataset": "dblp", "subjects": []}),
            ("/v1/query", {"dataset": "dblp"}),  # no keywords
            ("/v1/query", {"dataset": "dblp", "keywords": KEYWORDS, "bogus": 1}),
        ]
        for endpoint, payload in cases:
            status, body = cluster.dispatch_safe(endpoint, payload)
            ref_status, ref_body = reference.dispatch_safe(endpoint, payload)
            assert (status, body) == (ref_status, ref_body), endpoint

    def test_unknown_dataset_is_404(self, cluster) -> None:
        status, body = cluster.dispatch_safe(
            "/v1/size-l", {"dataset": "nope", "table": "author", "row_id": 0}
        )
        assert status == 404
        assert body["error"]["type"] == "UnknownDatasetError"

    def test_unknown_endpoint_is_404(self, cluster) -> None:
        status, body = cluster.dispatch_safe("/v1/frobnicate", {})
        assert status == 404
        assert body["error"]["type"] == "UnknownEndpointError"

    def test_oversized_batch_is_400(self, cluster) -> None:
        status, body = cluster.dispatch_safe(
            "/v1/batch",
            {"dataset": "dblp", "subjects": [["author", 0]] * 10_001},
        )
        assert status == 400
        assert "batch limit" in body["error"]["message"]

    def test_reload_without_snapshot_is_400_everywhere(self, cluster) -> None:
        status, body = cluster.dispatch_safe(
            "/v1/admin/reload", {"dataset": "dblp"}
        )
        assert status == 400
        assert "no snapshot path" in body["error"]["message"]


class TestClusterObservability:
    def test_stats_merge_sums_the_workers(self, cluster) -> None:
        # touch all three partitions so every worker has counters to merge
        for row_id in range(6):
            status, _ = cluster.dispatch_safe(
                "/v1/size-l",
                {
                    "dataset": "dblp",
                    "table": "author",
                    "row_id": row_id % 3,
                    "options": OPTIONS,
                },
            )
            assert status == 200
        per_worker = [
            cluster.supervisor.request(shard, "/v1/stats", {"dataset": "dblp"})[1][
                "cache"
            ]
            for shard in range(3)
        ]
        status, merged = cluster.dispatch_safe("/v1/stats", {"dataset": "dblp"})
        assert status == 200
        assert merged["cache"] == CacheStats.merge(*per_worker).as_dict()
        assert merged["cluster"] == {"shards": 3, "ready": 3}

    def test_aggregate_stats_also_merge(self, cluster) -> None:
        status, merged = cluster.dispatch_safe("/v1/stats")
        assert status == 200
        assert merged["cluster"]["shards"] == 3
        assert isinstance(merged["dblp"]["cache"]["hits"], int)

    def test_row_scoped_invalidate_hits_only_the_owner(self, cluster) -> None:
        subject = {"dataset": "dblp", "table": "author", "row_id": 1}
        status, _ = cluster.dispatch_safe(
            "/v1/size-l", dict(subject, options=OPTIONS)
        )
        assert status == 200
        owner = cluster.router.ring.owner("dblp", "author", 1)
        before = [
            cluster.supervisor.request(s, "/v1/stats", {"dataset": "dblp"})[1][
                "cache"
            ]["cached_subjects"]
            for s in range(3)
        ]
        status, body = cluster.dispatch_safe("/v1/admin/invalidate", subject)
        assert status == 200
        assert body["invalidated"] == {"table": "author", "row_id": 1}
        after = [
            cluster.supervisor.request(s, "/v1/stats", {"dataset": "dblp"})[1][
                "cache"
            ]["cached_subjects"]
            for s in range(3)
        ]
        for shard in range(3):
            if shard == owner:
                assert after[shard] == before[shard] - 1
            else:
                assert after[shard] == before[shard]

    def test_healthz_over_http(self, cluster) -> None:
        server = cluster.create_http_server()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(
                f"{server.url}/v1/healthz", timeout=10
            ) as response:
                body = json.loads(response.read().decode("utf-8"))
            assert response.status == 200
            assert body["ok"] is True
            assert body["role"] == "router"
            assert [s["ready"] for s in body["shards"]] == [True, True, True]
            # liveness is GET-only, same 405 contract as the other reads
            request = urllib.request.Request(
                f"{server.url}/v1/healthz", data=b"{}", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as failure:
                urllib.request.urlopen(request, timeout=10)
            assert failure.value.code == 405
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


class TestCrashRecovery:
    """Kill -9 one worker: impatient callers get the pinned 503, patient
    callers ride through the restart, and the shard comes back."""

    def test_kill_503_restart_and_serve_again(self, cluster) -> None:
        owner = cluster.router.ring.owner("dblp", "author", 0)
        payload = {
            "dataset": "dblp",
            "table": "author",
            "row_id": 0,
            "options": OPTIONS,
        }
        restarts_before = cluster.supervisor.restarts(owner)
        impatient = ClusterRouter(cluster.supervisor, request_timeout=0.2)
        try:
            cluster.supervisor.kill(owner)
            status, body = impatient.dispatch_safe("/v1/size-l", payload)
            assert status == 503
            assert body["error"]["type"] == "ShardUnavailableError"
            assert body["error"]["status"] == 503
            assert "safe to retry" in body["error"]["message"]
        finally:
            impatient.close()
        # the module router's 30s budget spans the restart: same request,
        # same worker index, answered by the replacement process
        status, body = cluster.dispatch_safe("/v1/size-l", payload)
        assert status == 200, body
        assert cluster.supervisor.restarts(owner) == restarts_before + 1
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if cluster.supervisor.ready_count() == 3:
                break
            time.sleep(0.05)
        assert cluster.supervisor.ready_count() == 3


# --------------------------------------------------------------------- #
# Graceful signals (subprocess regression tests for the serve CLI)
# --------------------------------------------------------------------- #
def _spawn_serve(tmp_path: Path, *extra: str) -> tuple[subprocess.Popen, str]:
    ready = tmp_path / "ready.txt"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "--scale",
            "0.25",
            "serve",
            "--port",
            "0",
            "--ready-file",
            str(ready),
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 120
    while not ready.is_file():
        if process.poll() is not None:
            raise AssertionError(
                f"serve exited early: {process.stderr.read().decode()}"
            )
        if time.monotonic() > deadline:
            process.kill()
            raise AssertionError("serve never wrote its ready file")
        time.sleep(0.05)
    return process, ready.read_text(encoding="utf-8").strip()


@pytest.mark.parametrize("term_signal", [signal.SIGTERM, signal.SIGINT])
def test_serve_signal_is_a_clean_exit(tmp_path, term_signal) -> None:
    process, url = _spawn_serve(tmp_path)
    try:
        with urllib.request.urlopen(f"{url}/v1/healthz", timeout=10) as response:
            assert response.status == 200
        process.send_signal(term_signal)
        assert process.wait(timeout=30) == 0
    finally:
        if process.poll() is None:
            process.kill()


def test_serve_shards_sigterm_drains_the_whole_tree(tmp_path) -> None:
    """SIGTERM to the sharded front end exits 0 and leaves no orphaned
    worker processes behind."""
    process, url = _spawn_serve(tmp_path, "--shards", "2", "--cache-size", "8")
    try:
        with urllib.request.urlopen(f"{url}/v1/healthz", timeout=10) as response:
            body = json.loads(response.read().decode("utf-8"))
        assert body["role"] == "router"
        workers = [shard["pid"] for shard in body["shards"]]
        assert len(workers) == 2
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            alive = [pid for pid in workers if _pid_alive(pid)]
            if not alive:
                break
            time.sleep(0.1)
        assert not [pid for pid in workers if _pid_alive(pid)]
    finally:
        if process.poll() is None:
            process.kill()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
