"""Determinism guarantees: every pipeline stage must be reproducible.

Benchmark credibility depends on runs being bit-identical under a seed;
these tests pin that property for generation, ranking, prelim, algorithms,
and keyword queries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import SizeLEngine
from repro.datasets.dblp import small_dblp
from repro.ranking.objectrank import compute_objectrank


@pytest.fixture(scope="module")
def twin_engines():
    """Two engines built independently from the same seed."""
    engines = []
    for _ in range(2):
        data = small_dblp(seed=21)
        store = compute_objectrank(data.db, data.ga1())
        engines.append(
            SizeLEngine(
                data.db,
                {"author": data.author_gds(), "paper": data.paper_gds()},
                store,
            )
        )
    return engines


def _signature(tree) -> list[tuple[str, int, int]]:
    return [
        (n.gds.label, n.row_id, n.parent.row_id if n.parent else -1)
        for n in tree.nodes
    ]


class TestDeterminism:
    def test_objectrank_scores_identical(self, twin_engines) -> None:
        a, b = twin_engines
        for table in ("author", "paper", "conference"):
            assert np.array_equal(a.store.array(table), b.store.array(table))

    def test_complete_os_identical(self, twin_engines) -> None:
        a, b = twin_engines
        assert _signature(a.complete_os("author", 0)) == _signature(
            b.complete_os("author", 0)
        )

    def test_prelim_identical(self, twin_engines) -> None:
        a, b = twin_engines
        prelim_a, stats_a = a.prelim_os("author", 0, 10)
        prelim_b, stats_b = b.prelim_os("author", 0, 10)
        assert _signature(prelim_a) == _signature(prelim_b)
        assert stats_a.avoided_subtrees == stats_b.avoided_subtrees
        assert stats_a.limited_extractions == stats_b.limited_extractions

    @pytest.mark.parametrize("algorithm", ["dp", "bottom_up", "top_path"])
    def test_size_l_selection_identical(self, twin_engines, algorithm) -> None:
        a, b = twin_engines
        ra = a.size_l("author", 0, 12, algorithm=algorithm)
        rb = b.size_l("author", 0, 12, algorithm=algorithm)
        assert ra.selected_uids == rb.selected_uids
        assert ra.importance == pytest.approx(rb.importance)

    def test_keyword_query_order_identical(self, twin_engines) -> None:
        a, b = twin_engines
        ra = a.keyword_query("Faloutsos", l=6)
        rb = b.keyword_query("Faloutsos", l=6)
        assert [(e.match.table, e.match.row_id) for e in ra] == [
            (e.match.table, e.match.row_id) for e in rb
        ]

    def test_same_engine_repeat_is_stable(self, twin_engines) -> None:
        engine = twin_engines[0]
        first = engine.size_l("author", 1, 9, algorithm="top_path")
        second = engine.size_l("author", 1, 9, algorithm="top_path")
        assert first.selected_uids == second.selected_uids
