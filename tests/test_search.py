"""Tests for the keyword-search front end."""

from __future__ import annotations

import pytest

from repro.errors import SearchError
from repro.search.inverted_index import InvertedIndex
from repro.search.keyword import KeywordSearcher
from repro.search.tokenizer import tokenize


class TestTokenizer:
    def test_lowercase_alphanumeric(self) -> None:
        assert tokenize("Christos Faloutsos") == ["christos", "faloutsos"]

    def test_punctuation_split(self) -> None:
        assert tokenize("R-KwS: a (new) paradigm!") == ["r", "kws", "a", "new", "paradigm"]

    def test_numbers_kept(self) -> None:
        assert tokenize("TPC-H 2011") == ["tpc", "h", "2011"]

    def test_empty(self) -> None:
        assert tokenize("") == []
        assert tokenize("...") == []


class TestInvertedIndex:
    def test_single_keyword_lookup(self, dblp) -> None:
        index = InvertedIndex(dblp.db, ["author"])
        postings = index.lookup("faloutsos")
        assert {p.row_id for p in postings} == {0, 1, 2}

    def test_lookup_case_insensitive(self, dblp) -> None:
        index = InvertedIndex(dblp.db, ["author"])
        assert index.lookup("FALOUTSOS") == index.lookup("faloutsos")

    def test_multi_token_keyword_intersects(self, dblp) -> None:
        index = InvertedIndex(dblp.db, ["author"])
        postings = index.conjunctive(["Christos Faloutsos"])
        assert {p.row_id for p in postings} == {0}

    def test_conjunctive_multiple_keywords(self, dblp) -> None:
        index = InvertedIndex(dblp.db, ["author"])
        assert index.conjunctive(["christos", "michalis"]) == set()
        both = index.conjunctive(["faloutsos"])
        assert len(both) == 3

    def test_unknown_token_empty(self, dblp) -> None:
        index = InvertedIndex(dblp.db, ["author"])
        assert index.lookup("zzzzunknown") == set()

    def test_vocabulary_size(self, dblp) -> None:
        index = InvertedIndex(dblp.db, ["author"])
        assert index.vocabulary_size > 10

    def test_only_searchable_columns_indexed(self, tpch) -> None:
        # partsupp.comment is text but not flagged searchable.
        index = InvertedIndex(tpch.db, ["partsupp"])
        assert index.lookup("restock") == set()


class TestKeywordSearcher:
    def test_search_ranked_by_importance(self, dblp_engine) -> None:
        matches = dblp_engine.searcher.search("Faloutsos")
        assert len(matches) == 3
        scores = [m.importance for m in matches]
        assert scores == sorted(scores, reverse=True)
        assert matches[0].row_id == 0  # Christos is the most prolific

    def test_search_string_or_list(self, dblp_engine) -> None:
        a = dblp_engine.searcher.search("Faloutsos")
        b = dblp_engine.searcher.search(["Faloutsos"])
        assert [(m.table, m.row_id) for m in a] == [(m.table, m.row_id) for m in b]

    def test_empty_query_rejected(self, dblp_engine) -> None:
        with pytest.raises(SearchError):
            dblp_engine.searcher.search("   ")
        with pytest.raises(SearchError):
            dblp_engine.searcher.search([])

    def test_search_spans_all_rds_tables(self, dblp_engine) -> None:
        # Paper titles are searchable and Paper is an R_DS table here.
        matches = dblp_engine.searcher.search("Indexing")
        assert any(m.table == "paper" for m in matches)

    def test_no_rds_tables_rejected(self, dblp, dblp_store) -> None:
        with pytest.raises(SearchError):
            KeywordSearcher(dblp.db, [], dblp_store)
