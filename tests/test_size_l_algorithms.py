"""Algorithm correctness: DP optimality, Lemma 2, greedy invariants.

The heart of the reproduction's test suite:

* DP == brute force on hypothesis-generated random trees (Lemma 1);
* every algorithm returns a *connected* subtree containing the root with
  exactly min(l, reachable) nodes (Definition 1);
* Bottom-Up Pruning is optimal under monotone weights (Lemma 2);
* greedy results never exceed the optimum;
* the paper's Figure 4 worked example.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bottom_up import bottom_up_size_l
from repro.core.brute_force import brute_force_size_l
from repro.core.dp import optimal_size_l
from repro.core.os_tree import ObjectSummary
from repro.core.top_path import top_path_size_l

from tests.conftest import make_tree

ALL_ALGORITHMS = {
    "dp": optimal_size_l,
    "bottom_up": bottom_up_size_l,
    "top_path": top_path_size_l,
    "top_path_opt": lambda t, l: top_path_size_l(t, l, variant="optimized"),
}


# --------------------------------------------------------------------- #
# Hypothesis tree strategies
# --------------------------------------------------------------------- #
@st.composite
def random_tree(draw, max_nodes: int = 14, monotone: bool = False) -> ObjectSummary:
    """A random rooted tree with float weights.

    With ``monotone=True``, every child's weight is <= its parent's —
    the Lemma 2 / Lemma 3 precondition.
    """
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    parents = {0: None}
    structure: dict[int, list[int]] = {}
    for uid in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=uid - 1))
        parents[uid] = parent
        structure.setdefault(parent, []).append(uid)
    weights: dict[int, float] = {}
    for uid in range(n):
        raw = draw(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
        )
        if monotone and parents[uid] is not None:
            weights[uid] = min(raw, weights[parents[uid]])
        else:
            weights[uid] = raw
    return make_tree(structure, weights)


def assert_valid_size_l(tree: ObjectSummary, result, l: int) -> None:  # noqa: E741
    """Definition 1 invariants for any size-l result."""
    eligible = sum(1 for node in tree.nodes if node.depth < l)
    assert result.size == min(l, eligible)
    assert tree.root.uid in result.selected_uids
    for uid in result.selected_uids:
        node = tree.node(uid)
        if node.parent is not None:
            assert node.parent.uid in result.selected_uids, "subtree must be connected"
    assert result.importance == pytest.approx(
        sum(tree.node(uid).weight for uid in result.selected_uids)
    )


# --------------------------------------------------------------------- #
# Lemma 1: DP is optimal
# --------------------------------------------------------------------- #
class TestDPOptimality:
    @settings(max_examples=120, deadline=None)
    @given(random_tree(max_nodes=12), st.integers(min_value=1, max_value=7))
    def test_dp_matches_brute_force(self, tree: ObjectSummary, l: int) -> None:
        dp = optimal_size_l(tree, l)
        bf = brute_force_size_l(tree, l)
        assert dp.importance == pytest.approx(bf.importance)
        assert_valid_size_l(tree, dp, l)
        assert_valid_size_l(tree, bf, l)

    def test_figure_4_example(self, paper_figure4_tree) -> None:
        """The paper's Figure 4: the optimal size-4 OS is {1, 4, 5, 6}
        (root + its three best direct children; 30+31+80+35 = 176)."""
        result = optimal_size_l(paper_figure4_tree, 4)
        assert result.selected_uids == {0, 4, 5, 6}
        assert result.importance == pytest.approx(176.0)

    def test_l_larger_than_tree_returns_everything(self, star_tree) -> None:
        result = optimal_size_l(star_tree, 50)
        assert result.size == star_tree.size

    def test_l_one_returns_root(self, paper_figure4_tree) -> None:
        result = optimal_size_l(paper_figure4_tree, 1)
        assert result.selected_uids == {0}

    def test_depth_filter_excludes_deep_nodes(self, chain_tree) -> None:
        # Chain 0-1-2-3-4; with l=2 only depths 0-1 are eligible.
        result = optimal_size_l(chain_tree, 2)
        assert result.selected_uids == {0, 1}

    def test_deep_path_wins_when_it_should(self) -> None:
        # Root with a cheap deep chain holding a treasure vs rich shallow leaves.
        structure = {0: [1, 4, 5], 1: [2], 2: [3]}
        weights = {0: 1.0, 1: 0.1, 2: 0.1, 3: 100.0, 4: 5.0, 5: 4.0}
        tree = make_tree(structure, weights)
        result = optimal_size_l(tree, 4)
        assert result.selected_uids == {0, 1, 2, 3}

    def test_stats_reported(self, paper_figure4_tree) -> None:
        result = optimal_size_l(paper_figure4_tree, 4)
        assert result.stats["eligible_nodes"] == 14
        assert result.stats["cell_updates"] > 0


# --------------------------------------------------------------------- #
# All algorithms: Definition 1 invariants + bounded by optimum
# --------------------------------------------------------------------- #
class TestAlgorithmInvariants:
    @settings(max_examples=80, deadline=None)
    @given(random_tree(max_nodes=20), st.integers(min_value=1, max_value=10))
    def test_connectivity_size_and_bound(self, tree: ObjectSummary, l: int) -> None:
        optimum = optimal_size_l(tree, l).importance
        for name, algorithm in ALL_ALGORITHMS.items():
            result = algorithm(tree, l)
            assert_valid_size_l(tree, result, l)
            assert result.importance <= optimum + 1e-6, name

    @pytest.mark.parametrize("name", list(ALL_ALGORITHMS))
    def test_single_node_tree(self, name: str) -> None:
        tree = make_tree({}, {0: 3.0})
        result = ALL_ALGORITHMS[name](tree, 5)
        assert result.selected_uids == {0}

    @pytest.mark.parametrize("name", list(ALL_ALGORITHMS))
    def test_zero_weights(self, name: str) -> None:
        tree = make_tree({0: [1, 2]}, {0: 0.0, 1: 0.0, 2: 0.0})
        result = ALL_ALGORITHMS[name](tree, 2)
        assert result.size == 2


# --------------------------------------------------------------------- #
# Lemma 2: Bottom-Up optimal under monotone weights
# --------------------------------------------------------------------- #
class TestBottomUp:
    @settings(max_examples=80, deadline=None)
    @given(random_tree(max_nodes=14, monotone=True), st.integers(min_value=1, max_value=8))
    def test_lemma_2_monotone_optimal(self, tree: ObjectSummary, l: int) -> None:
        bu = bottom_up_size_l(tree, l)
        dp = optimal_size_l(tree, l)
        assert bu.importance == pytest.approx(dp.importance)

    def test_prunes_smallest_leaf_first(self, star_tree) -> None:
        result = bottom_up_size_l(star_tree, 3)
        # Leaves 5 (w=1) and 4 (w=2) and 3 (w=3) pruned; 1, 2 remain.
        assert result.selected_uids == {0, 1, 2}

    def test_root_never_pruned(self, chain_tree) -> None:
        result = bottom_up_size_l(chain_tree, 1)
        assert result.selected_uids == {0}

    def test_known_suboptimal_case(self) -> None:
        """Bottom-Up greedily prunes a low-weight connector and loses the
        treasure behind it — the weakness Top-Path fixes."""
        structure = {0: [1, 3], 1: [2]}
        weights = {0: 10.0, 1: 0.5, 2: 100.0, 3: 1.0}
        tree = make_tree(structure, weights)
        bu = bottom_up_size_l(tree, 2)
        dp = optimal_size_l(tree, 2)
        # With l=2 the optimum is {0, 3} (the treasure needs 3 slots).
        assert bu.importance == pytest.approx(dp.importance)
        # With l=3 the optimum is {0, 1, 2}=110.5; Bottom-Up prunes leaf 2's
        # connector path bottom-up: leaves are 2(100) and 3(1) -> prunes 3,
        # then stops at 3 nodes: {0, 1, 2}. Bottom-up survives this one; a
        # harsher case: prune order hits the connector first.
        structure = {0: [1, 3, 4], 1: [2]}
        weights = {0: 10.0, 1: 0.5, 2: 0.6, 3: 5.0, 4: 4.0}
        tree = make_tree(structure, weights)
        bu3 = bottom_up_size_l(tree, 3)
        assert bu3.selected_uids == {0, 3, 4}  # leaf 2 (0.6) pruned first

    def test_heap_stats(self, paper_figure4_tree) -> None:
        result = bottom_up_size_l(paper_figure4_tree, 4)
        assert result.stats["heap_dequeues"] == 10  # 14 - 4 prunes


# --------------------------------------------------------------------- #
# Top-Path specifics
# --------------------------------------------------------------------- #
class TestTopPath:
    def test_selects_deep_treasure_through_cheap_connectors(self) -> None:
        structure = {0: [1, 4, 5], 1: [2], 2: [3]}
        weights = {0: 1.0, 1: 0.1, 2: 0.1, 3: 100.0, 4: 5.0, 5: 4.0}
        tree = make_tree(structure, weights)
        result = top_path_size_l(tree, 4)
        assert result.selected_uids == {0, 1, 2, 3}

    def test_partial_path_takes_prefix(self) -> None:
        # Path of 3 needed but only 2 slots: the top of the path is taken
        # ("only these nodes are connected to the current size-l OS").
        structure = {0: [1], 1: [2], 2: [3]}
        weights = {0: 1.0, 1: 1.0, 2: 1.0, 3: 1000.0}
        tree = make_tree(structure, weights)
        result = top_path_size_l(tree, 3)
        assert result.selected_uids == {0, 1, 2}

    def test_figure_6_first_path_is_root_and_best_child(self, paper_figure4_tree) -> None:
        """Figure 6: node 5 has the max initial AI (30+80)/2 = 55, so the
        first selected path is {1, 5} (our uids {0, 5})."""
        result = top_path_size_l(paper_figure4_tree, 2)
        assert result.selected_uids == {0, 5}

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(random_tree(max_nodes=16), st.integers(min_value=1, max_value=8))
    def test_variants_close_to_each_other(self, tree: ObjectSummary, l: int) -> None:
        naive = top_path_size_l(tree, l, variant="naive")
        optimized = top_path_size_l(tree, l, variant="optimized")
        # The s(v) shortcut is a heuristic with no per-tree guarantee
        # (hypothesis found trees where it reaches only ~65% of the exact
        # rescan); require a valid same-size summary within a loose bound —
        # the ablation bench quantifies the typical (near-identical) gap.
        assert optimized.size == naive.size == min(l, tree.size)
        if naive.importance > 0:
            assert optimized.importance >= 0.5 * naive.importance

    def test_unknown_variant_rejected(self, star_tree) -> None:
        from repro.errors import SummaryError

        with pytest.raises(SummaryError):
            top_path_size_l(star_tree, 2, variant="bogus")


# --------------------------------------------------------------------- #
# Brute force self-checks
# --------------------------------------------------------------------- #
class TestBruteForce:
    def test_candidate_count_star(self, star_tree) -> None:
        # Size-3 subtrees of a 5-leaf star containing the root: C(5,2) = 10.
        result = brute_force_size_l(star_tree, 3)
        assert result.stats["candidates"] == 10

    def test_candidate_count_chain(self, chain_tree) -> None:
        result = brute_force_size_l(chain_tree, 3)
        assert result.stats["candidates"] == 1  # only the prefix
