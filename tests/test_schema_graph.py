"""Tests for the schema graph and junction detection."""

from __future__ import annotations

from repro.datasets.dblp import DBLPDataset
from repro.datasets.tpch import TPCHDataset
from repro.schema_graph.graph import SchemaGraph


class TestJunctionDetection:
    def test_dblp_junctions(self, dblp: DBLPDataset) -> None:
        graph = SchemaGraph(dblp.db)
        # writes and cites are pure M:N tables; everything else is not.
        assert graph.junction_tables == {"writes", "cites"}

    def test_tpch_partsupp_is_not_a_junction(self, tpch: TPCHDataset) -> None:
        # partsupp has two FKs but carries data columns and is referenced by
        # lineitem — the paper's Figure 12 shows it as a first-class node.
        graph = SchemaGraph(tpch.db)
        assert "partsupp" not in graph.junction_tables
        assert graph.junction_tables == set()

    def test_explicit_override(self, dblp: DBLPDataset) -> None:
        graph = SchemaGraph(dblp.db, junction_tables={"writes"})
        assert graph.junction_tables == {"writes"}


class TestNavigation:
    def test_edges_from_and_into(self, dblp: DBLPDataset) -> None:
        graph = SchemaGraph(dblp.db)
        assert {e.target for e in graph.edges_from("paper")} == {"year"}
        into_paper = {(e.owner, e.column) for e in graph.edges_into("paper")}
        assert into_paper == {("writes", "paper_id"), ("cites", "citing_id"), ("cites", "cited_id")}

    def test_degree(self, tpch: TPCHDataset) -> None:
        graph = SchemaGraph(tpch.db)
        # nation: region FK out; customer + supplier FKs in.
        assert graph.degree("nation") == 3

    def test_junction_partner_edges_self_loop(self, dblp: DBLPDataset) -> None:
        graph = SchemaGraph(dblp.db)
        citing_edge = next(
            e for e in graph.edges_into("paper") if e.column == "citing_id"
        )
        partners = graph.junction_partner_edges("cites", citing_edge)
        # The partner of citing_id is cited_id (not itself), even though both
        # FKs of the self-loop junction target the same table.
        assert [p.column for p in partners] == ["cited_id"]

    def test_edge_other_endpoint(self, dblp: DBLPDataset) -> None:
        graph = SchemaGraph(dblp.db)
        edge = graph.edges_from("paper")[0]
        assert edge.other("paper") == "year"
        assert edge.other("year") == "paper"
