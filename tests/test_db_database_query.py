"""Tests for the database catalog, integrity checks, and the query layer."""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.query import QueryInterface
from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.types import ColumnType
from repro.errors import IntegrityError, SchemaError, UnknownTableError


def _db() -> Database:
    db = Database("test")
    db.create_table(
        TableSchema(
            "team",
            [Column("team_id", ColumnType.INT), Column("name", ColumnType.TEXT)],
            primary_key="team_id",
        )
    )
    db.create_table(
        TableSchema(
            "person",
            [
                Column("person_id", ColumnType.INT),
                Column("name", ColumnType.TEXT),
                Column("team_id", ColumnType.INT, nullable=True),
                Column("score", ColumnType.FLOAT),
            ],
            primary_key="person_id",
            foreign_keys=[ForeignKey("team_id", "team", "team_id")],
        )
    )
    db.insert_many("team", [[1, "red"], [2, "blue"]])
    db.insert_many(
        "person",
        [
            [1, "ann", 1, 9.0],
            [2, "bob", 1, 5.0],
            [3, "cid", 2, 7.0],
            [4, "dot", None, 3.0],
        ],
    )
    return db


class TestDatabase:
    def test_unknown_table_raises(self) -> None:
        with pytest.raises(UnknownTableError):
            _db().table("nope")

    def test_duplicate_table_rejected(self) -> None:
        db = _db()
        with pytest.raises(SchemaError):
            db.create_table(
                TableSchema("team", [Column("x", ColumnType.INT)], primary_key="x")
            )

    def test_fk_to_unknown_table_rejected(self) -> None:
        db = Database()
        with pytest.raises(SchemaError):
            db.create_table(
                TableSchema(
                    "child",
                    [Column("id", ColumnType.INT), Column("p", ColumnType.INT)],
                    primary_key="id",
                    foreign_keys=[ForeignKey("p", "parent", "id")],
                )
            )

    def test_self_referencing_fk_allowed(self) -> None:
        db = Database()
        db.create_table(
            TableSchema(
                "node",
                [
                    Column("id", ColumnType.INT),
                    Column("parent", ColumnType.INT, nullable=True),
                ],
                primary_key="id",
                foreign_keys=[ForeignKey("parent", "node", "id")],
            )
        )
        db.insert("node", [1, None])
        db.insert("node", [2, 1])
        db.validate_integrity()

    def test_foreign_keys_into(self) -> None:
        db = _db()
        into_team = db.foreign_keys_into("team")
        assert [(owner, fk.column) for owner, fk in into_team] == [("person", "team_id")]

    def test_integrity_passes_on_valid_data(self) -> None:
        _db().validate_integrity()

    def test_integrity_catches_dangling_fk(self) -> None:
        db = _db()
        db.insert("person", [9, "zed", 99, 1.0])
        with pytest.raises(IntegrityError, match="dangling"):
            db.validate_integrity()

    def test_integrity_null_fk_allowed(self) -> None:
        db = _db()
        db.validate_integrity()  # person "dot" has NULL team_id

    def test_total_rows(self) -> None:
        assert _db().total_rows == 6

    def test_index_on_is_cached(self) -> None:
        db = _db()
        first = db.index_on("person", "team_id")
        assert db.index_on("person", "team_id") is first

    def test_ensure_fk_indexes(self) -> None:
        db = _db()
        db.ensure_fk_indexes()
        assert db.index_on("person", "team_id").lookup(1) == [0, 1]


class TestQueryInterface:
    def test_select_where_eq(self) -> None:
        qi = QueryInterface(_db())
        assert qi.select_where_eq("person", "team_id", 1) == [0, 1]
        assert qi.select_where_eq("person", "team_id", 99) == []
        assert qi.io_accesses == 2  # empty results still cost one access

    def test_select_top_where_eq_orders_and_limits(self) -> None:
        db = _db()
        qi = QueryInterface(db)
        person = db.table("person")

        def score(table: str, row_id: int) -> float:
            return float(person.value(row_id, "score"))

        top = qi.select_top_where_eq("person", "team_id", 1, score, threshold=0.0, limit=1)
        assert top == [0]  # ann (9.0) beats bob (5.0)

    def test_select_top_threshold_is_strict(self) -> None:
        db = _db()
        qi = QueryInterface(db)
        person = db.table("person")

        def score(table: str, row_id: int) -> float:
            return float(person.value(row_id, "score"))

        top = qi.select_top_where_eq("person", "team_id", 1, score, threshold=9.0, limit=5)
        assert top == []  # 9.0 is not > 9.0
        assert qi.io_accesses == 1  # Avoidance Condition 2's cost behaviour

    def test_lookup_by_pk(self) -> None:
        qi = QueryInterface(_db())
        assert qi.lookup_by_pk("team", 2) == [1]
        assert qi.lookup_by_pk("team", 42) == []

    def test_reset_counters(self) -> None:
        qi = QueryInterface(_db())
        qi.select_where_eq("person", "team_id", 1)
        qi.reset_counters()
        assert qi.io_accesses == 0 and qi.rows_fetched == 0

    def test_project(self) -> None:
        qi = QueryInterface(_db())
        rows = qi.project("person", [0, 2], ["name", "score"])
        assert rows == [("ann", 9.0), ("cid", 7.0)]
