"""The reliability tier, unit by unit: fault plans, deadlines, breakers,
supervisor backoff, and the dispatcher's 503/504 mapping.

Everything here runs in-process (no worker subprocesses — those live in
``test_chaos.py``); the single shared deployment is module-scoped.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster.worker import DatasetSpec, WorkerSpec
from repro.cluster.supervisor import Supervisor, _Handle
from repro.errors import (
    BackendIOError,
    DeadlineExceededError,
    FaultInjectionError,
    ReproError,
    RequestValidationError,
    SnapshotFormatError,
)
from repro.persist import Snapshot
from repro.reliability import (
    FAULT_PLAN_ENV,
    CircuitBreaker,
    Deadline,
    FaultInjector,
    FaultPlan,
    FaultRule,
    active,
    bind_deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
    inject,
    install,
    install_from_env,
    uninstall,
)
from repro.service.deployment import Deployment
from repro.service.dispatch import ServiceDispatcher, status_for
from repro.service.protocol import (
    decode_query_request,
    encode_error,
    encode_request,
    QueryRequest,
    request_deadline,
)


@pytest.fixture(autouse=True)
def disarm_faults():
    """No test may leak an armed plan into the next (or into other files)."""
    yield
    uninstall()


# --------------------------------------------------------------------- #
# Fault plans and the injector
# --------------------------------------------------------------------- #
class TestFaultPlan:
    def test_rule_validation(self) -> None:
        with pytest.raises(ReproError, match="site"):
            FaultRule(site="")
        with pytest.raises(ReproError, match="kind"):
            FaultRule(site="s", kind="explode")
        with pytest.raises(ReproError, match="probability"):
            FaultRule(site="s", probability=1.5)
        with pytest.raises(ReproError, match="delay_seconds"):
            FaultRule(site="s", kind="delay", delay_seconds=-1)
        with pytest.raises(ReproError, match="max_fires"):
            FaultRule(site="s", max_fires=0)
        with pytest.raises(ReproError, match="after"):
            FaultRule(site="s", after=-1)

    def test_plan_round_trips_through_json(self) -> None:
        plan = FaultPlan(
            rules=[
                FaultRule(site="db.io", probability=0.25, max_fires=3, after=2),
                FaultRule(site="transport.send", kind="delay", delay_seconds=0.01),
            ],
            seed=99,
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_undecodable_plan_is_a_repro_error(self) -> None:
        with pytest.raises(ReproError, match="undecodable"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ReproError, match="rules must be a list"):
            FaultPlan.from_dict({"rules": 7})


class TestFaultInjector:
    def _sequence(self, seed: int, n: int = 200) -> list[bool]:
        plan = FaultPlan([FaultRule(site="s", probability=0.5)], seed=seed)
        injector = FaultInjector(plan)
        return [injector.evaluate("s") is not None for _ in range(n)]

    def test_same_seed_same_fire_sequence(self) -> None:
        assert self._sequence(42) == self._sequence(42)

    def test_different_seeds_differ(self) -> None:
        assert self._sequence(1) != self._sequence(2)

    def test_after_and_max_fires(self) -> None:
        plan = FaultPlan([FaultRule(site="s", after=2, max_fires=1)], seed=0)
        injector = FaultInjector(plan)
        fired = [injector.evaluate("s") is not None for _ in range(5)]
        assert fired == [False, False, True, False, False]
        assert injector.fired("s") == 1
        assert injector.fired() == 1

    def test_sites_are_independent(self) -> None:
        """Evaluations at one site must not perturb another site's RNG."""
        plan = FaultPlan(
            [FaultRule(site="a", probability=0.5), FaultRule(site="b", probability=0.5)],
            seed=7,
        )
        solo = FaultInjector(plan)
        solo_a = [solo.evaluate("a") is not None for _ in range(100)]
        interleaved = FaultInjector(plan)
        got_a = []
        for _ in range(100):
            interleaved.evaluate("b")
            got_a.append(interleaved.evaluate("a") is not None)
        assert got_a == solo_a

    def test_unknown_site_is_free(self) -> None:
        injector = FaultInjector(FaultPlan([FaultRule(site="s")], seed=0))
        assert injector.evaluate("other") is None


class TestInjectHook:
    def test_disarmed_is_a_no_op(self) -> None:
        uninstall()
        inject("db.io", BackendIOError)  # must not raise

    def test_armed_error_uses_the_site_factory(self) -> None:
        install(FaultPlan([FaultRule(site="db.io")]))
        with pytest.raises(BackendIOError, match="injected fault at site 'db.io'"):
            inject("db.io", BackendIOError)

    def test_armed_error_defaults_to_fault_injection_error(self) -> None:
        install(FaultPlan([FaultRule(site="x")]))
        with pytest.raises(FaultInjectionError):
            inject("x")

    def test_delay_rule_sleeps_instead_of_raising(self) -> None:
        install(
            FaultPlan([FaultRule(site="x", kind="delay", delay_seconds=0.03)])
        )
        start = time.monotonic()
        inject("x", BackendIOError)  # must not raise
        assert time.monotonic() - start >= 0.025

    def test_install_from_env(self) -> None:
        plan = FaultPlan([FaultRule(site="db.io", max_fires=1)], seed=5)
        loaded = install_from_env({FAULT_PLAN_ENV: plan.to_json()})
        assert loaded == plan
        assert active() is not None and active().plan == plan
        uninstall()
        assert install_from_env({}) is None
        assert active() is None


# --------------------------------------------------------------------- #
# Deadlines
# --------------------------------------------------------------------- #
class TestDeadline:
    def test_fresh_deadline_is_not_expired(self) -> None:
        deadline = Deadline(60_000)
        assert not deadline.expired()
        assert 0 < deadline.remaining() <= 60.0
        assert deadline.remaining_ms() >= 1
        deadline.check()  # must not raise

    def test_expired_deadline_raises_the_pinned_504_error(self) -> None:
        deadline = Deadline(1)
        time.sleep(0.005)
        assert deadline.expired()
        assert deadline.remaining() < 0
        assert deadline.remaining_ms() == 1  # forwardable floor
        with pytest.raises(DeadlineExceededError) as info:
            deadline.check()
        assert info.value.budget_ms == 1

    def test_error_message_is_budget_free(self) -> None:
        """Byte-identical 504 bodies across topologies require that no
        budget number (which forwarding rewrites) leaks into the text."""
        assert str(DeadlineExceededError(100)) == str(DeadlineExceededError(7))
        assert "100" not in str(DeadlineExceededError(100))

    def test_scope_installs_and_restores(self) -> None:
        assert current_deadline() is None
        check_deadline()  # no scope: no-op
        outer, inner = Deadline(60_000), Deadline(30_000)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            with deadline_scope(None):  # None nests as a true no-op
                assert current_deadline() is outer
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_check_deadline_raises_inside_an_expired_scope(self) -> None:
        deadline = Deadline(1)
        time.sleep(0.005)
        with deadline_scope(deadline):
            with pytest.raises(DeadlineExceededError):
                check_deadline()

    def test_bind_deadline_carries_across_threads(self) -> None:
        """The Session pool idiom: the submitting thread's deadline must be
        visible inside the pooled task's thread."""
        deadline = Deadline(60_000)
        seen: list[Deadline | None] = []
        bound = bind_deadline(lambda: seen.append(current_deadline()), deadline)
        thread = threading.Thread(target=bound)
        thread.start()
        thread.join()
        assert seen == [deadline]
        assert bind_deadline(check_deadline, None) is check_deadline


# --------------------------------------------------------------------- #
# The circuit breaker
# --------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_closed_until_threshold_consecutive_failures(self) -> None:
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=60)
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self) -> None:
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two *consecutive* failures

    def test_half_open_admits_exactly_one_probe(self) -> None:
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.03)
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        time.sleep(0.04)
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # everyone else keeps waiting

    def test_probe_success_closes(self) -> None:
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.01)
        breaker.record_failure()
        time.sleep(0.02)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_for_another_window(self) -> None:
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.03)
        breaker.record_failure()
        time.sleep(0.04)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # a fresh reset window armed

    def test_constructor_validation(self) -> None:
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1)


# --------------------------------------------------------------------- #
# Supervisor backoff
# --------------------------------------------------------------------- #
class _StubProcess:
    def poll(self):
        return None


class _StubClient:
    def request(self, endpoint, payload=None, *, timeout=None):
        return 200, {"ok": True}

    def close(self):
        pass


def _handle() -> _Handle:
    spec = WorkerSpec(
        shard_index=0,
        shard_count=1,
        datasets=(DatasetSpec(name="d", database="dblp"),),
        ready_file="",
    )
    return _Handle(index=0, spec=spec)


class TestSupervisorBackoff:
    @pytest.fixture()
    def supervisor(self):
        sup = Supervisor(
            [], backoff_base=0.25, backoff_cap=5.0, backoff_reset_after=10.0
        )
        yield sup
        sup.stop()

    def test_delay_grows_exponentially_to_the_cap(self, supervisor) -> None:
        delays = [supervisor._backoff_delay(n) for n in range(1, 8)]
        assert delays == [0.25, 0.5, 1.0, 2.0, 4.0, 5.0, 5.0]
        assert supervisor._backoff_delay(0) == 0.0
        assert supervisor._backoff_delay(50) == 5.0  # 2**49 must not overflow this

    def test_note_failure_arms_the_backoff_window(self, supervisor) -> None:
        handle = _handle()
        handle.ready = True
        for expected_failures, expected_delay in ((1, 0.25), (2, 0.5), (3, 1.0)):
            before = time.monotonic()
            supervisor._note_failure(handle)
            assert handle.consecutive_failures == expected_failures
            assert not handle.ready
            lag = handle.not_before - before
            assert expected_delay - 0.01 <= lag <= expected_delay + 0.1

    def test_backoff_resets_after_sustained_health(self, supervisor) -> None:
        handle = _handle()
        handle.process = _StubProcess()
        handle.client = _StubClient()
        handle.ready = True
        handle.consecutive_failures = 3
        handle.ready_since = time.monotonic() - 11.0  # healthy past the window
        supervisor._check(handle)
        assert handle.consecutive_failures == 0

    def test_backoff_does_not_reset_while_recently_restarted(self, supervisor) -> None:
        handle = _handle()
        handle.process = _StubProcess()
        handle.client = _StubClient()
        handle.ready = True
        handle.consecutive_failures = 3
        handle.ready_since = time.monotonic()  # just came back
        supervisor._check(handle)
        assert handle.consecutive_failures == 3


# --------------------------------------------------------------------- #
# Wire protocol: deadline_ms and allow_partial
# --------------------------------------------------------------------- #
class TestProtocolFields:
    def test_deadline_ms_must_be_a_positive_int(self) -> None:
        base = {"dataset": "d", "keywords": ["k"]}
        for bad in (0, -5, 1.5, "100", True):
            with pytest.raises(RequestValidationError, match="deadline_ms"):
                decode_query_request(dict(base, deadline_ms=bad))

    def test_allow_partial_must_be_a_bool(self) -> None:
        base = {"dataset": "d", "keywords": ["k"]}
        with pytest.raises(RequestValidationError, match="allow_partial"):
            decode_query_request(dict(base, allow_partial="yes"))
        request = decode_query_request(dict(base, allow_partial=True, deadline_ms=50))
        assert request.allow_partial is True
        assert request.deadline_ms == 50

    def test_encode_round_trips_the_new_fields(self) -> None:
        request = decode_query_request(
            {"dataset": "d", "keywords": ["k"], "deadline_ms": 250, "allow_partial": True}
        )
        encoded = encode_request(request)
        assert encoded["deadline_ms"] == 250
        assert encoded["allow_partial"] is True
        again = decode_query_request(encoded)
        assert again.deadline_ms == 250 and again.allow_partial is True

    def test_defaults_are_omitted_from_the_wire(self) -> None:
        """Requests without a budget must encode exactly as before PR 7."""
        request = decode_query_request({"dataset": "d", "keywords": ["k"]})
        encoded = encode_request(request)
        assert "deadline_ms" not in encoded
        assert "allow_partial" not in encoded

    def test_request_deadline_helper(self) -> None:
        assert request_deadline(None) is None
        assert request_deadline({"dataset": "d"}) is None
        deadline = request_deadline({"deadline_ms": 100})
        assert isinstance(deadline, Deadline) and deadline.budget_ms == 100
        with pytest.raises(RequestValidationError, match="deadline_ms"):
            request_deadline({"deadline_ms": 0})

    def test_status_mapping(self) -> None:
        assert status_for(DeadlineExceededError(5)) == 504
        assert status_for(BackendIOError("disk")) == 503


# --------------------------------------------------------------------- #
# The dispatcher under faults and deadlines (single process)
# --------------------------------------------------------------------- #
SEED, SCALE = 7, 0.5
KEYWORDS = ["Faloutsos"]


@pytest.fixture(scope="module")
def dispatcher():
    deployment = Deployment().add(
        "dblp", named="dblp", seed=SEED, scale=SCALE, cache_size=64
    )
    yield ServiceDispatcher(deployment)
    deployment.close()


class TestDispatcherReliability:
    @pytest.fixture(autouse=True)
    def cold_cache(self, dispatcher):
        """Injected db.io faults only fire on *executed* statements, so a
        warm OS cache would let a faulted request sail through."""
        status, _ = dispatcher.dispatch_safe(
            "/v1/admin/invalidate", {"dataset": "dblp"}
        )
        assert status == 200

    def test_deadline_blown_by_slow_io_is_the_pinned_504(self, dispatcher) -> None:
        install(
            FaultPlan(
                [FaultRule(site="db.io", kind="delay", delay_seconds=0.02)]
            )
        )
        payload = {
            "dataset": "dblp",
            "keywords": KEYWORDS,
            "options": {"l": 8, "backend": "database"},
            "deadline_ms": 40,
        }
        status, body = dispatcher.dispatch_safe("/v1/query", payload)
        assert status == 504
        assert body == encode_error(DeadlineExceededError(40), 504)
        assert body["error"]["type"] == "DeadlineExceededError"

    def test_injected_backend_io_fault_is_a_503(self, dispatcher) -> None:
        install(FaultPlan([FaultRule(site="db.io", max_fires=1)]))
        payload = {
            "dataset": "dblp",
            "keywords": KEYWORDS,
            "options": {"l": 8, "backend": "database"},
        }
        status, body = dispatcher.dispatch_safe("/v1/query", payload)
        assert status == 503
        assert body["error"]["type"] == "BackendIOError"
        assert body["error"]["status"] == 503

    def test_errors_are_not_cached_and_recovery_is_clean(self, dispatcher) -> None:
        """After the plan is disarmed the very same request must succeed —
        an injected failure (or a 504) must never poison the OS cache."""
        payload = {
            "dataset": "dblp",
            "keywords": KEYWORDS,
            "options": {"l": 8, "backend": "database"},
        }
        install(FaultPlan([FaultRule(site="db.io", max_fires=1)]))
        status, _body = dispatcher.dispatch_safe("/v1/query", payload)
        assert status == 503
        uninstall()
        status, body = dispatcher.dispatch_safe("/v1/query", payload)
        assert status == 200
        assert body["results"]

    def test_generous_deadline_does_not_perturb_the_answer(self, dispatcher) -> None:
        """The cardinal invariant, single-process edition: a request that
        makes its deadline is byte-identical to one with no deadline."""
        payload = {"dataset": "dblp", "keywords": KEYWORDS, "options": {"l": 8}}
        status_plain, plain = dispatcher.dispatch_safe("/v1/query", payload)
        status_budget, budgeted = dispatcher.dispatch_safe(
            "/v1/query", dict(payload, deadline_ms=60_000)
        )
        assert (status_plain, status_budget) == (200, 200)
        stable = ("rank", "table", "row_id", "importance", "selected_uids", "rendered")
        assert [{k: e[k] for k in stable} for e in plain["results"]] == [
            {k: e[k] for k in stable} for e in budgeted["results"]
        ]
        assert "degraded" not in budgeted  # healthy answers carry no marker


class TestSnapshotFaults:
    def test_snapshot_open_fault_is_the_pinned_format_error(
        self, dblp_snapshot
    ) -> None:
        install(FaultPlan([FaultRule(site="snapshot.open", max_fires=1)]))
        with pytest.raises(SnapshotFormatError, match="injected fault"):
            Snapshot.open(dblp_snapshot.path)
        # max_fires=1 spent: the same open now succeeds
        again = Snapshot.open(dblp_snapshot.path)
        assert again.path == dblp_snapshot.path

    def test_snapshot_checksum_fault_fails_verification(self, dblp_snapshot) -> None:
        install(FaultPlan([FaultRule(site="snapshot.checksum", max_fires=1)]))
        with pytest.raises(SnapshotFormatError, match="injected fault"):
            Snapshot.open(dblp_snapshot.path, verify=True)
        # verify=False never reaches the checksum site
        install(FaultPlan([FaultRule(site="snapshot.checksum")]))
        snap = Snapshot.open(dblp_snapshot.path, verify=False)
        assert snap.path == dblp_snapshot.path
