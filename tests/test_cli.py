"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXIT_ERROR, EXIT_NO_RESULTS, EXIT_OK, build_parser, main


class TestParser:
    def test_query_defaults(self) -> None:
        args = build_parser().parse_args(["query", "--keywords", "Faloutsos"])
        assert args.database == "dblp"
        assert args.l == 10
        assert args.source == "prelim"

    def test_requires_subcommand(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_database_rejected(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--database", "oracle", "--keywords", "x"])


class TestCommands:
    def test_query_dblp(self, capsys) -> None:
        code = main(
            ["--scale", "0.2", "query", "--keywords", "Faloutsos", "--l", "8"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "result 1" in out
        assert "Author: Christos Faloutsos" in out

    def test_query_no_match(self, capsys) -> None:
        code = main(
            ["--scale", "0.2", "query", "--keywords", "zzznothing", "--l", "5"]
        )
        assert code == 1
        assert "no matching" in capsys.readouterr().out

    def test_query_tpch(self, capsys) -> None:
        code = main(
            [
                "--scale", "0.4",
                "query",
                "--database", "tpch",
                "--keywords", "Supplier#000001",
                "--l", "6",
                "--algorithm", "bottom_up",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Supplier" in out

    def test_gds_command(self, capsys) -> None:
        code = main(["--scale", "0.2", "gds", "--subject", "author"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Paper" in out and "Co_Author" in out

    def test_analyze_command(self, capsys) -> None:
        code = main(
            [
                "--scale", "0.2",
                "analyze",
                "--subject", "author",
                "--keywords", "Christos", "Faloutsos",
                "--max-l", "8",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "optimal family" in out
        assert "Jaccard" in out


class TestExitCodes:
    """The pinned contract: 0 = success, 1 = no results, 2 = usage error."""

    def test_success_is_zero(self, capsys) -> None:
        assert (
            main(["--scale", "0.2", "query", "--keywords", "Faloutsos", "--l", "5"])
            == EXIT_OK
        )
        capsys.readouterr()

    def test_no_results_is_one(self, capsys) -> None:
        assert (
            main(["--scale", "0.2", "query", "--keywords", "zzznothing"])
            == EXIT_NO_RESULTS
        )
        capsys.readouterr()

    def test_library_error_is_two_with_stderr_message(self, capsys) -> None:
        code = main(
            ["--scale", "0.2", "query", "--keywords", "x", "--l", "0"]
        )
        assert code == EXIT_ERROR
        assert "summary size l" in capsys.readouterr().err

    def test_unknown_gds_subject_is_two(self, capsys) -> None:
        code = main(["--scale", "0.2", "gds", "--subject", "nope"])
        assert code == EXIT_ERROR
        assert "no G_DS registered" in capsys.readouterr().err

    def test_argparse_usage_error_is_two(self) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["query"])  # --keywords is required
        assert excinfo.value.code == EXIT_ERROR


class TestPrecomputeCLI:
    def test_precompute_then_query_snapshot_round_trip(
        self, tmp_path, capsys
    ) -> None:
        snap = tmp_path / "snap.d"
        code = main(
            [
                "--scale", "0.2",
                "precompute",
                "--out", str(snap),
                "--table", "author",
                "--workers", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "snapshot written" in out
        assert snap.is_dir() and (snap / "manifest.json").is_file()

        query = [
            "--scale", "0.2",
            "query",
            "--keywords", "Faloutsos",
            "--l", "6",
            "--source", "complete",
        ]
        assert main(query) == EXIT_OK
        cold = capsys.readouterr().out
        assert main(query + ["--snapshot", str(snap)]) == EXIT_OK
        warm = capsys.readouterr().out
        # identical rendered results, and every OS came off the disk tier
        assert warm.startswith(cold)
        assert "disk hits: 3, disk misses: 0" in warm

    def test_no_verify_flag_skips_checksums_but_not_fingerprint(
        self, tmp_path, capsys
    ) -> None:
        snap = tmp_path / "snap.d"
        assert (
            main(
                [
                    "--scale", "0.2",
                    "precompute", "--out", str(snap),
                    "--table", "author", "--ids", "0", "1", "2",
                ]
            )
            == EXIT_OK
        )
        capsys.readouterr()
        query = [
            "--scale", "0.2",
            "query", "--keywords", "Faloutsos", "--l", "5",
            "--source", "complete",
            "--snapshot", str(snap), "--no-verify",
        ]
        assert main(query) == EXIT_OK
        assert "disk hits: 3" in capsys.readouterr().out
        # fingerprint validation still runs without checksum verification
        assert main(["--seed", "99"] + query) == EXIT_ERROR
        assert "does not match" in capsys.readouterr().err

    def test_existing_out_dir_without_overwrite_is_two(
        self, tmp_path, capsys
    ) -> None:
        snap = tmp_path / "snap.d"
        args = [
            "--scale", "0.2",
            "precompute", "--out", str(snap), "--table", "author",
            "--ids", "0", "1",
        ]
        assert main(args) == EXIT_OK
        capsys.readouterr()
        assert main(args) == EXIT_ERROR
        assert "already exists" in capsys.readouterr().err
        assert main(args + ["--overwrite"]) == EXIT_OK
        capsys.readouterr()

    def test_mismatched_snapshot_is_two(self, tmp_path, capsys) -> None:
        snap = tmp_path / "snap.d"
        assert (
            main(
                [
                    "--scale", "0.2",
                    "precompute", "--out", str(snap),
                    "--table", "author", "--ids", "0",
                ]
            )
            == EXIT_OK
        )
        capsys.readouterr()
        code = main(
            [
                "--scale", "0.2", "--seed", "99",
                "query", "--keywords", "Faloutsos",
                "--snapshot", str(snap),
            ]
        )
        assert code == EXIT_ERROR
        assert "does not match" in capsys.readouterr().err

    def test_bad_selector_is_two(self, tmp_path, capsys) -> None:
        code = main(
            [
                "--scale", "0.2",
                "precompute", "--out", str(tmp_path / "s"),
                "--ids", "1",
            ]
        )
        assert code == EXIT_ERROR
        assert "requires" in capsys.readouterr().err


class TestServeCLI:
    """The serve subcommand: pinned flags, shared loader, exit codes."""

    def test_serve_flags_pinned(self) -> None:
        """serve shares the dataset parent parser (no flag drift) and the
        query command's --workers/--unordered knobs."""
        args = build_parser().parse_args(["serve"])
        assert args.database == "dblp"  # the shared dataset parent
        assert args.port == 8077
        assert args.workers == 1
        assert args.unordered is False
        assert args.snapshot is None
        args = build_parser().parse_args(
            [
                "serve", "--database", "tpch", "--port", "0",
                "--workers", "4", "--unordered", "--snapshot", "s.d",
            ]
        )
        assert (args.database, args.port, args.workers) == ("tpch", 0, 4)
        assert args.unordered is True and args.snapshot == "s.d"

    def test_serve_bad_snapshot_is_exit_two(self, tmp_path, capsys) -> None:
        """The shared _load_session loader rejects before binding a port."""
        code = main(
            [
                "--scale", "0.2",
                "serve", "--port", "0",
                "--snapshot", str(tmp_path / "missing.d"),
            ]
        )
        assert code == EXIT_ERROR
        assert "not a snapshot directory" in capsys.readouterr().err

    def test_serve_mismatched_snapshot_is_exit_two(self, tmp_path, capsys) -> None:
        snap = tmp_path / "snap.d"
        assert (
            main(
                [
                    "--scale", "0.2",
                    "precompute", "--out", str(snap),
                    "--table", "author", "--ids", "0",
                ]
            )
            == EXIT_OK
        )
        capsys.readouterr()
        code = main(
            ["--scale", "0.2", "--seed", "99", "serve", "--port", "0",
             "--snapshot", str(snap)]
        )
        assert code == EXIT_ERROR
        assert "does not match" in capsys.readouterr().err

    def test_serve_busy_port_is_exit_two(self, capsys) -> None:
        """A bind failure is a usage error (2), never the no-results 1."""
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        try:
            port = blocker.getsockname()[1]
            code = main(["--scale", "0.2", "serve", "--port", str(port)])
        finally:
            blocker.close()
        assert code == EXIT_ERROR
        assert "cannot bind" in capsys.readouterr().err

    def test_serve_answers_queries_and_exits_zero(self, tmp_path, capsys) -> None:
        """Boot on an ephemeral port, query over HTTP, exit 0 on shutdown."""
        import json
        import threading
        import time
        import urllib.request

        ready = tmp_path / "ready.txt"
        codes: list[int] = []

        def run_serve() -> None:
            codes.append(
                main(
                    [
                        "--scale", "0.2",
                        "serve", "--port", "0", "--workers", "2",
                        "--serve-seconds", "2",
                        "--ready-file", str(ready),
                    ]
                )
            )

        thread = threading.Thread(target=run_serve)
        thread.start()
        try:
            deadline = time.monotonic() + 15
            while not ready.is_file() and time.monotonic() < deadline:
                time.sleep(0.02)
            url = ready.read_text(encoding="utf-8").strip()
            request = urllib.request.Request(
                url + "/v1/query",
                data=json.dumps(
                    {"dataset": "dblp", "keywords": ["Faloutsos"], "options": {"l": 5}}
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                body = json.loads(response.read().decode("utf-8"))
            assert response.status == 200
            assert body["total_matches"] == 3
            assert len(body["results"][0]["selected_uids"]) == 5
        finally:
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert codes == [EXIT_OK]
        capsys.readouterr()
