"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_query_defaults(self) -> None:
        args = build_parser().parse_args(["query", "--keywords", "Faloutsos"])
        assert args.database == "dblp"
        assert args.l == 10
        assert args.source == "prelim"

    def test_requires_subcommand(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_database_rejected(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--database", "oracle", "--keywords", "x"])


class TestCommands:
    def test_query_dblp(self, capsys) -> None:
        code = main(
            ["--scale", "0.2", "query", "--keywords", "Faloutsos", "--l", "8"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "result 1" in out
        assert "Author: Christos Faloutsos" in out

    def test_query_no_match(self, capsys) -> None:
        code = main(
            ["--scale", "0.2", "query", "--keywords", "zzznothing", "--l", "5"]
        )
        assert code == 1
        assert "no matching" in capsys.readouterr().out

    def test_query_tpch(self, capsys) -> None:
        code = main(
            [
                "--scale", "0.4",
                "query",
                "--database", "tpch",
                "--keywords", "Supplier#000001",
                "--l", "6",
                "--algorithm", "bottom_up",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Supplier" in out

    def test_gds_command(self, capsys) -> None:
        code = main(["--scale", "0.2", "gds", "--subject", "author"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Paper" in out and "Co_Author" in out

    def test_analyze_command(self, capsys) -> None:
        code = main(
            [
                "--scale", "0.2",
                "analyze",
                "--subject", "author",
                "--keywords", "Christos", "Faloutsos",
                "--max-l", "8",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "optimal family" in out
        assert "Jaccard" in out
