"""Tests for the Section-7 future-work features we implemented:
word-budget summaries and combined top-k ranking."""

from __future__ import annotations

import pytest

from repro.core.snippet import word_budget_summary
from repro.core.topk import rank_by_summary_importance, rank_data_subjects
from repro.errors import SummaryError


class TestWordBudget:
    def test_budget_respected(self, dblp_engine) -> None:
        tree = dblp_engine.complete_os("author", 0)
        result = word_budget_summary(tree, word_budget=50)
        assert result.summary.word_count() <= 50
        assert result.stats["word_budget"] == 50
        assert result.stats["word_count"] == result.summary.word_count()

    def test_larger_budget_gives_no_smaller_summary(self, dblp_engine) -> None:
        tree = dblp_engine.complete_os("author", 1)
        small = word_budget_summary(tree, word_budget=30)
        large = word_budget_summary(tree, word_budget=120)
        assert large.size >= small.size

    def test_tiny_budget_falls_back_to_root(self, dblp_engine) -> None:
        tree = dblp_engine.complete_os("author", 0)
        result = word_budget_summary(tree, word_budget=1)
        assert result.size == 1

    def test_bad_budget_rejected(self, dblp_engine) -> None:
        tree = dblp_engine.complete_os("author", 0)
        with pytest.raises(SummaryError):
            word_budget_summary(tree, word_budget=0)

    def test_requires_database(self, star_tree) -> None:
        with pytest.raises(SummaryError, match="database"):
            word_budget_summary(star_tree, word_budget=10)


class TestTopK:
    def test_rank_data_subjects(self, dblp_engine) -> None:
        matches = dblp_engine.searcher.search("Faloutsos")
        ranked = rank_data_subjects(matches, k=2)
        assert len(ranked) == 2
        assert ranked[0].importance >= ranked[1].importance

    def test_rank_by_summary_importance(self, dblp_engine) -> None:
        matches = dblp_engine.searcher.search("Faloutsos")
        ranked = rank_by_summary_importance(dblp_engine, matches, l=10, k=3)
        importances = [result.importance for _match, result in ranked]
        assert importances == sorted(importances, reverse=True)
        assert all(result.size == 10 for _match, result in ranked)

    def test_summary_ranking_can_differ_from_subject_ranking(self, dblp_engine) -> None:
        # Not asserted to differ (data-dependent), but both orders must be
        # internally consistent and cover the same subjects.
        matches = dblp_engine.searcher.search("Faloutsos")
        by_subject = [m.row_id for m in rank_data_subjects(matches)]
        by_summary = [
            m.row_id for m, _r in rank_by_summary_importance(dblp_engine, matches, l=5)
        ]
        assert sorted(by_subject) == sorted(by_summary)
